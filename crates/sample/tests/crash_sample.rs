//! Kill-at-every-site chaos suite for the sampling engine: the tentpole
//! proof that sampled simulation is **self-healing**. For every registered
//! `reno-chaos` failpoint site, an injected fault (panic or corruption,
//! transient or sticky) must complete with zero escaped panics and a result
//! byte-identical to either the healthy run (transient fault → serial
//! retry) or the deterministic exact-replay fallback (persistent fault) —
//! at any `RENO_THREADS`.
//!
//! Abort-family modes (`abort`/`half-write`/`flush`) kill the process and
//! cannot be observed in-process; their coverage lives in the `reno-dse`
//! subprocess suite (`crates/dse/tests/crash_resume.rs`), which exercises
//! the same engine through `reno_chaos::write_all`.
//!
//! The chaos arming state is process-global, so every test serializes on
//! one mutex and arms programmatically ([`reno_chaos::arm`]) instead of
//! mutating environment variables under the threaded test runner.

use reno_core::RenoConfig;
use reno_isa::{Asm, Program, Reg};
use reno_sample::{
    run_sampled, FaultRecovery, SampleConfig, SampleError, SampledResult, FAILPOINT_SITES,
    FP_PASS_CHECKPOINT, FP_SEGMENT_RESTORE,
};
use reno_sim::MachineConfig;
use std::sync::{Mutex, MutexGuard, PoisonError};

static CHAOS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A failed assertion in one test must not wedge the rest of the suite.
    CHAOS.lock().unwrap_or_else(PoisonError::into_inner)
}

fn kernel(iters: i64, mask: i16) -> Program {
    let mut a = Asm::named("chaos");
    let buf = a.zeros("buf", 8 * (mask as usize + 1));
    a.li(Reg::S0, buf as i64);
    a.li(Reg::T0, iters);
    a.li(Reg::V0, 0);
    a.label("loop");
    a.andi(Reg::T1, Reg::T0, mask);
    a.slli(Reg::T1, Reg::T1, 3);
    a.add(Reg::T1, Reg::T1, Reg::S0);
    a.ld(Reg::T2, Reg::T1, 0);
    a.add(Reg::V0, Reg::V0, Reg::T2);
    a.st(Reg::V0, Reg::T1, 0);
    a.xor(Reg::V0, Reg::V0, Reg::T0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.out(Reg::V0);
    a.halt();
    a.assemble().unwrap()
}

fn cfg() -> MachineConfig {
    MachineConfig::four_wide(RenoConfig::reno())
}

/// ~920k dynamic insts / 64k periods = 14 strata = 2 segment jobs, so the
/// suite covers both a fresh-start segment and a checkpoint-restored one,
/// with per-context injection on the restored (last) segment.
fn sc() -> SampleConfig {
    SampleConfig::new(256, 512, 65536).with_head(2048)
}

fn fingerprint(r: &SampledResult) -> String {
    format!("{r:?}")
}

/// The healthy run's fingerprint with the fault annotations scrubbed —
/// what a retry-healed run must reproduce bit for bit.
fn scrubbed(r: &SampledResult) -> String {
    let mut c = r.clone();
    c.segment_faults.clear();
    fingerprint(&c)
}

#[test]
fn recording_enumerates_every_registered_site() {
    let _g = lock();
    reno_chaos::disarm();
    reno_chaos::reset_counts();
    reno_chaos::set_recording(true);
    let program = kernel(100_000, 255);
    let r = run_sampled(&program, cfg(), &sc());
    reno_chaos::set_recording(false);
    let counts = reno_chaos::counts();
    reno_chaos::reset_counts();

    assert!(r.segment_faults.is_empty(), "recording must not inject");
    for site in FAILPOINT_SITES {
        assert!(
            counts.iter().any(|(s, _, _)| s == site),
            "registered site {site} was never hit by a healthy sampled run \
             (counts: {counts:?})"
        );
    }
    // Context values are the segment indices, so per-segment specs can
    // target a specific job (only segments > 0 restore).
    for seg in [1] {
        assert!(
            counts
                .iter()
                .any(|&(s, c, n)| s == FP_SEGMENT_RESTORE && c == seg && n > 0),
            "segment {seg} never hit its restore failpoint: {counts:?}"
        );
    }
}

#[test]
fn a_transient_panic_at_every_site_heals_by_retry() {
    let _g = lock();
    reno_chaos::disarm();
    let program = kernel(100_000, 255);
    let healthy = run_sampled(&program, cfg(), &sc());
    assert!(healthy.segment_faults.is_empty());
    let want = fingerprint(&healthy);

    for site in FAILPOINT_SITES {
        reno_chaos::arm(&format!("{site}:1:panic")).unwrap();
        let r = run_sampled(&program, cfg(), &sc());
        reno_chaos::disarm();

        assert_eq!(
            r.segment_faults.len(),
            1,
            "one injected panic at {site} must surface as exactly one fault: \
             {:?}",
            r.segment_faults
        );
        let fault = &r.segment_faults[0];
        assert_eq!(fault.recovery, FaultRecovery::Retried, "site {site}");
        assert!(
            matches!(fault.error, SampleError::SegmentPanic(_)),
            "site {site}: {fault:?}"
        );
        assert!(r.exact_segments.is_empty(), "retry healed, no fallback");
        assert_eq!(
            scrubbed(&r),
            want,
            "a retry-healed run at {site} must be byte-identical to healthy"
        );
    }
}

#[test]
fn sticky_corruption_forces_the_exact_replay_fallback() {
    let _g = lock();
    reno_chaos::disarm();
    let program = kernel(100_000, 255);
    let healthy = run_sampled(&program, cfg(), &sc());

    // Sticky: the corruption survives the serial retry, so the engine must
    // escalate to re-simulating segment 1 in full detail.
    reno_chaos::arm(&format!("{FP_SEGMENT_RESTORE}@1:1+:corrupt")).unwrap();
    let r = run_sampled(&program, cfg(), &sc());
    reno_chaos::disarm();

    assert_eq!(r.segment_faults.len(), 1, "{:?}", r.segment_faults);
    let fault = &r.segment_faults[0];
    assert_eq!(fault.segment, 1);
    assert_eq!(fault.recovery, FaultRecovery::ExactReplay);
    assert!(matches!(fault.error, SampleError::BadCheckpoint(_)));
    assert_eq!(r.exact_segments.len(), 1);
    let exact = &r.exact_segments[0];
    assert_eq!(exact.segment, 1);
    // The replay covers the segment to the program's end, modulo the
    // halt-edge instructions the detailed window cannot mark.
    assert!(
        r.total_insts - exact.range.1 <= 8,
        "exact range {:?} should reach ~{}",
        exact.range,
        r.total_insts
    );
    assert!(exact.cycles > 0 && exact.insts > 0);

    // Architectural results stay exact; the estimate absorbs the replaced
    // segment's *measured* cycles, so it stays close to the healthy
    // estimate (well within the sampling error budget).
    assert_eq!(r.checksum, healthy.checksum);
    assert_eq!(r.digest, healthy.digest);
    assert_eq!(r.total_insts, healthy.total_insts);
    let rel = (r.est_cpi() - healthy.est_cpi()).abs() / healthy.est_cpi();
    assert!(
        rel < 0.05,
        "degraded estimate drifted {rel:.4} from healthy \
         ({} vs {})",
        r.est_cpi(),
        healthy.est_cpi()
    );
}

#[test]
fn the_same_sticky_fault_is_byte_identical_at_any_thread_count() {
    let _g = lock();
    reno_chaos::disarm();
    let program = kernel(100_000, 255);

    let mut prints: Vec<String> = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var("RENO_THREADS", threads);
        // Context-qualified spec: segment 1's hits are sequenced by its own
        // code path, so the same dynamic event fires at any worker count.
        reno_chaos::arm(&format!("{FP_SEGMENT_RESTORE}@1:1+:corrupt")).unwrap();
        let r = run_sampled(&program, cfg(), &sc());
        reno_chaos::disarm();
        assert_eq!(r.segment_faults.len(), 1);
        assert_eq!(r.segment_faults[0].recovery, FaultRecovery::ExactReplay);
        prints.push(fingerprint(&r));
    }
    std::env::remove_var("RENO_THREADS");
    assert_eq!(
        prints[0], prints[1],
        "the same failure pattern must produce byte-identical degraded \
         results at RENO_THREADS=1 and 4"
    );
}

#[test]
fn a_sticky_phase1_panic_degrades_to_the_exact_full_detail_run() {
    let _g = lock();
    reno_chaos::disarm();
    // Checkpoints are only taken for multi-segment runs, so the failpoint
    // needs the 3-segment workload; the fallback then re-simulates the
    // whole program in detail.
    let program = kernel(100_000, 255);
    let scfg = sc();
    let healthy = run_sampled(&program, cfg(), &scfg);

    reno_chaos::arm(&format!("{FP_PASS_CHECKPOINT}:1+:panic")).unwrap();
    let r = run_sampled(&program, cfg(), &scfg);
    reno_chaos::disarm();

    assert_eq!(r.segment_faults.len(), 1, "{:?}", r.segment_faults);
    let fault = &r.segment_faults[0];
    assert_eq!(fault.segment, u64::MAX, "a whole-run fault");
    assert_eq!(fault.recovery, FaultRecovery::ExactReplay);
    assert!(
        r.intervals.is_empty() && r.head.is_some(),
        "full-detail fallback reports one all-covering head window"
    );
    // The fallback is exact: architectural results match, and the
    // "estimate" is a measurement.
    assert_eq!(r.checksum, healthy.checksum);
    assert_eq!(r.total_insts, healthy.total_insts);
    assert!(r.halted);
    assert_eq!(r.detailed_insts, r.total_insts);
}

#[test]
fn a_sticky_corrupt_pass_checkpoint_is_caught_by_validation() {
    let _g = lock();
    reno_chaos::disarm();
    let program = kernel(100_000, 255);
    let scfg = sc();
    let healthy = run_sampled(&program, cfg(), &scfg);

    // Corrupting the serialized phase-1 checkpoints defeats the retry (the
    // stored bytes stay poisoned), so pass validation rejects the pass and
    // the run degrades to the exact full-detail fallback — never a panic,
    // never a mis-sampled estimate.
    reno_chaos::arm(&format!("{FP_PASS_CHECKPOINT}:1+:corrupt")).unwrap();
    let r = run_sampled(&program, cfg(), &scfg);
    reno_chaos::disarm();

    assert_eq!(r.segment_faults.len(), 1, "{:?}", r.segment_faults);
    let fault = &r.segment_faults[0];
    assert_eq!(fault.segment, u64::MAX);
    assert_eq!(fault.recovery, FaultRecovery::ExactReplay);
    assert!(matches!(fault.error, SampleError::BadCheckpoint(_)));
    assert_eq!(r.checksum, healthy.checksum);
    assert_eq!(r.total_insts, healthy.total_insts);
}
