//! The sampled-run trace export's determinism contract: with tracing on,
//! the merged per-window trace — and therefore its exported Chrome JSON —
//! must be byte-identical whether the segment jobs run on one worker or
//! many. The merge rebases each window's trace onto the end of the previous
//! one in segment order, which `par_map` preserves, so `RENO_THREADS` may
//! change wall-clock but never a byte of the export.
//!
//! This file holds exactly one test: it mutates the process-wide
//! `RENO_THREADS` variable, so it must not share a process with tests that
//! read it concurrently (integration-test files run as their own process).

use reno_core::RenoConfig;
use reno_isa::{Asm, Program, Reg};
use reno_sample::{run_sampled, SampleConfig};
use reno_sim::MachineConfig;
use reno_trace::{chrome_trace_json, validate_json};

fn kernel(iters: i64, mask: i16) -> Program {
    let mut a = Asm::named("tracedet");
    let buf = a.zeros("buf", 8 * (mask as usize + 1));
    a.li(Reg::S0, buf as i64);
    a.li(Reg::T0, iters);
    a.li(Reg::V0, 0);
    a.label("loop");
    a.andi(Reg::T1, Reg::T0, mask);
    a.slli(Reg::T1, Reg::T1, 3);
    a.add(Reg::T1, Reg::T1, Reg::S0);
    a.ld(Reg::T2, Reg::T1, 0);
    a.add(Reg::V0, Reg::V0, Reg::T2);
    a.st(Reg::V0, Reg::T1, 0);
    a.xor(Reg::V0, Reg::V0, Reg::T0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.out(Reg::V0);
    a.halt();
    a.assemble().unwrap()
}

#[test]
fn sampled_trace_export_is_byte_identical_across_thread_counts() {
    let cfg = MachineConfig::four_wide(RenoConfig::reno()).with_trace();
    // Same shape as the result-determinism test: ~1.2M insts over 64k
    // periods = multiple parallel segment jobs, several traced windows.
    let p = kernel(100_000, 255);
    let sc = SampleConfig::new(256, 512, 65536).with_head(2048);

    let mut exports: Vec<String> = Vec::new();
    for threads in ["1", "2", "4"] {
        std::env::set_var("RENO_THREADS", threads);
        let r = run_sampled(&p, cfg.clone(), &sc);
        assert!(!r.intervals.is_empty(), "the run must genuinely sample");
        let t = r.trace.as_ref().expect("tracing was on");
        assert!(t.retire_count() > 0, "windows recorded pipeline events");
        assert!(!t.sys.is_empty(), "windows recorded system-track events");
        exports.push(chrome_trace_json(t));
    }
    std::env::remove_var("RENO_THREADS");

    validate_json(&exports[0]).expect("merged export is valid JSON");
    for (k, e) in exports.iter().enumerate().skip(1) {
        assert_eq!(
            &exports[0], e,
            "sampled trace diverged between RENO_THREADS=1 and setting #{k}"
        );
    }
}
