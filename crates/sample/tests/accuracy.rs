//! Sampled-vs-full accuracy pins at `Scale::Small`: if a change to the
//! engine, the warming hooks, the estimators, or the ladder gates degrades
//! sampling accuracy past the subsystem's ≤2% CPI contract, these fail
//! loudly. Workloads were chosen so both ladder outcomes stay covered:
//! programs long enough to be genuinely sampled, and short ones that must
//! take the exact full-detail fallback.

use reno_core::RenoConfig;
use reno_sample::run_sampled_auto;
use reno_sim::{MachineConfig, Simulator};
use reno_workloads::{all_workloads, Scale};

const CPI_ERR_LIMIT_PCT: f64 = 2.0;

fn check(name: &str, expect_sampled: bool) {
    let ws = all_workloads(Scale::Small);
    let w = ws.iter().find(|w| w.name == name).expect("workload exists");
    let cfg = MachineConfig::four_wide(RenoConfig::reno());
    let full = Simulator::new(&w.program, cfg.clone()).run(1 << 30);
    let sampled = run_sampled_auto(&w.program, cfg, u64::MAX);

    // Architectural results are exact by construction.
    assert!(sampled.halted && full.halted);
    assert_eq!(sampled.checksum, full.checksum, "{name}: checksum");
    assert_eq!(sampled.digest, full.digest, "{name}: digest");
    assert_eq!(sampled.total_insts, full.retired, "{name}: stream length");

    let full_cpi = full.cycles as f64 / full.retired as f64;
    let err_pct = (sampled.est_cpi() - full_cpi).abs() / full_cpi * 100.0;
    assert!(
        err_pct <= CPI_ERR_LIMIT_PCT,
        "{name}: sampled CPI err {err_pct:.2}% exceeds {CPI_ERR_LIMIT_PCT}% \
         (full {full_cpi:.4}, est {:.4})",
        sampled.est_cpi()
    );

    if expect_sampled {
        assert!(
            !sampled.intervals.is_empty(),
            "{name}: expected genuine sampling, but the ladder fell back to \
             full detail — the speed half of the sampling bargain regressed"
        );
        assert!(
            sampled.detailed_fraction() < 0.5,
            "{name}: detailed fraction {:.1}% defeats the purpose of sampling",
            sampled.detailed_fraction() * 100.0
        );
    } else {
        assert!(
            sampled.intervals.is_empty() && err_pct == 0.0,
            "{name}: short programs must take the exact full-detail fallback"
        );
    }
}

/// Long enough at Small scale (~1M dynamic instructions) that the ladder's
/// sparse round must serve it.
#[test]
fn vpr_samples_within_two_percent() {
    check("vpr.r", true);
}

/// Mid-size (~190k): the dense round must serve it.
#[test]
fn bzip2_samples_within_two_percent() {
    check("bzip2", true);
}

/// Short programs (tens of thousands of instructions): sampling cannot
/// field enough windows, so the ladder must produce the exact fallback.
#[test]
fn short_workloads_fall_back_to_exact_full_detail() {
    check("mcf", false);
    check("gs.de", false);
}

/// The documented PR 3 limitation: vortex at `Scale::Large` changes its
/// working-set regime mid-run, and in-order functional warming cannot
/// reproduce the out-of-order cache state there — which used to bias the
/// sampled estimate several percent *invisibly* (window count, model R²,
/// and dispersion gates all passed). The shadow-profile drift gate
/// compares the beyond-L1 service mix of fitted vs unmeasured strata and
/// escalates (densify / exact fallback) when they diverge, so the ≤2%
/// contract holds here too. Release-only: a full detailed Large vortex run
/// is too slow unoptimized; CI runs it with `--ignored` in the release job.
#[test]
#[ignore = "Large scale — run in release: cargo test --release -p reno-sample --test accuracy -- --ignored"]
fn vortex_large_drift_gate_keeps_error_bounded() {
    let ws = all_workloads(Scale::Large);
    let w = ws
        .iter()
        .find(|w| w.name == "vortex")
        .expect("workload exists");
    let cfg = MachineConfig::four_wide(RenoConfig::reno());
    let full = Simulator::new(&w.program, cfg.clone()).run(1 << 32);
    let sampled = run_sampled_auto(&w.program, cfg, u64::MAX);
    assert!(sampled.halted && full.halted);
    assert_eq!(sampled.checksum, full.checksum, "vortex/Large: checksum");
    assert_eq!(sampled.total_insts, full.retired, "vortex/Large: stream");
    let full_cpi = full.cycles as f64 / full.retired as f64;
    let err_pct = (sampled.est_cpi() - full_cpi).abs() / full_cpi * 100.0;
    assert!(
        err_pct <= CPI_ERR_LIMIT_PCT,
        "vortex/Large: sampled CPI err {err_pct:.2}% exceeds \
         {CPI_ERR_LIMIT_PCT}% (full {full_cpi:.4}, est {:.4}, drift {:?})",
        sampled.est_cpi(),
        sampled.feature_drift,
    );
}
