//! The shard-parallel sampling engine's determinism contract: a sampled
//! run's *entire* result — every interval, every counter, every estimate,
//! bit for bit — must be identical whether the segment jobs run on one
//! worker or many. Segmentation is planned from the sampling config alone
//! (never from the host), and the merge is order-preserving, so
//! `RENO_THREADS` may change wall-clock but never bytes.
//!
//! This file holds exactly one test: it mutates the process-wide
//! `RENO_THREADS` variable, so it must not share a process with tests that
//! read it concurrently (integration-test files run as their own process).

use reno_core::RenoConfig;
use reno_isa::{Asm, Program, Reg};
use reno_sample::{run_sampled, run_sampled_auto, SampleConfig, SampledResult};
use reno_sim::MachineConfig;

fn kernel(iters: i64, mask: i16) -> Program {
    let mut a = Asm::named("det");
    let buf = a.zeros("buf", 8 * (mask as usize + 1));
    a.li(Reg::S0, buf as i64);
    a.li(Reg::T0, iters);
    a.li(Reg::V0, 0);
    a.label("loop");
    a.andi(Reg::T1, Reg::T0, mask);
    a.slli(Reg::T1, Reg::T1, 3);
    a.add(Reg::T1, Reg::T1, Reg::S0);
    a.ld(Reg::T2, Reg::T1, 0);
    a.add(Reg::V0, Reg::V0, Reg::T2);
    a.st(Reg::V0, Reg::T1, 0);
    a.xor(Reg::V0, Reg::V0, Reg::T0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.out(Reg::V0);
    a.halt();
    a.assemble().unwrap()
}

/// The full result, bit for bit: `Debug` prints every field (floats in
/// shortest-roundtrip form), so equal strings mean equal results.
fn fingerprint(r: &SampledResult) -> String {
    format!("{r:?}")
}

#[test]
fn sampled_results_are_byte_identical_across_thread_counts() {
    let cfg = MachineConfig::four_wide(RenoConfig::reno());
    // ~1.2M insts / 64k periods = 18 strata over 8-period segments = 3
    // parallel segment jobs for the explicit config; the auto ladder picks
    // its own shape over a shorter capped run.
    let p_explicit = kernel(100_000, 255);
    let sc = SampleConfig::new(256, 512, 65536).with_head(2048);
    let p_auto = kernel(40_000, 63);

    let mut fingerprints: Vec<(String, String)> = Vec::new();
    for threads in ["1", "2", "4"] {
        std::env::set_var("RENO_THREADS", threads);
        let explicit = run_sampled(&p_explicit, cfg.clone(), &sc);
        let auto = run_sampled_auto(&p_auto, cfg.clone(), 400_000);
        assert!(
            !explicit.intervals.is_empty(),
            "the explicit run must genuinely sample"
        );
        fingerprints.push((fingerprint(&explicit), fingerprint(&auto)));
    }
    std::env::remove_var("RENO_THREADS");

    let (e1, a1) = &fingerprints[0];
    for (k, (e, a)) in fingerprints.iter().enumerate().skip(1) {
        assert_eq!(
            e1, e,
            "run_sampled diverged between RENO_THREADS=1 and setting #{k}"
        );
        assert_eq!(
            a1, a,
            "run_sampled_auto diverged between RENO_THREADS=1 and setting #{k}"
        );
    }
}
