use reno_func::ExecError;
use reno_sim::{SampleMark, SimStats};
use reno_trace::PipelineTrace;

/// Statistics of one detailed measurement interval, as the delta between
/// its two [`SampleMark`]s (pipeline in full flight at both edges).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntervalStat {
    /// Dynamic index (whole-run instruction number) of the first measured
    /// instruction.
    pub start_inst: u64,
    /// Index of the sampling-period stratum this window represents (the
    /// head stratum uses 0 and is kept separately in
    /// [`SampledResult::head`]).
    pub stratum: u64,
    /// Instructions measured.
    pub insts: u64,
    /// Cycles the measured instructions took to retire.
    pub cycles: u64,
    /// Instructions renamed inside the window (eliminated + issued).
    pub renamed: u64,
    /// Instructions RENO eliminated or folded inside the window.
    pub eliminated: u64,
    /// Pipeline event counters inside the window.
    pub stats: SimStats,
}

impl IntervalStat {
    /// Builds the delta record between a window's start and end marks.
    pub fn from_marks(
        start_inst: u64,
        stratum: u64,
        s: &SampleMark,
        e: &SampleMark,
    ) -> IntervalStat {
        IntervalStat {
            start_inst,
            stratum,
            insts: e.retired - s.retired,
            cycles: e.cycles - s.cycles,
            renamed: e.reno.renamed - s.reno.renamed,
            eliminated: e.reno.eliminated() - s.reno.eliminated(),
            stats: stats_delta(&e.stats, &s.stats),
        }
    }

    /// Cycles per instruction inside this interval.
    pub fn cpi(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insts as f64
        }
    }
}

fn stats_delta(e: &SimStats, s: &SimStats) -> SimStats {
    SimStats {
        replays: e.replays - s.replays,
        violations: e.violations - s.violations,
        misintegrations: e.misintegrations - s.misintegrations,
        reexec_loads: e.reexec_loads - s.reexec_loads,
        squashed: e.squashed - s.squashed,
        preg_stall_cycles: e.preg_stall_cycles - s.preg_stall_cycles,
        queue_stall_cycles: e.queue_stall_cycles - s.queue_stall_cycles,
        store_forwards: e.store_forwards - s.store_forwards,
        replay_renamed: e.replay_renamed - s.replay_renamed,
        issued: e.issued - s.issued,
        iq_occ_sum: e.iq_occ_sum - s.iq_occ_sum,
        rob_occ_sum: e.rob_occ_sum - s.rob_occ_sum,
    }
}

/// Why a piece of a sampled run failed. The taxonomy replaces the engine's
/// former hot-path `expect()`s: every variant is recoverable (retry, then
/// the deterministic exact-replay fallback) and ends up recorded in
/// [`SampledResult::segment_faults`], never as a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleError {
    /// A serialized phase-1 checkpoint failed to deserialize or validate
    /// (bit rot, torn write, or an injected corruption).
    BadCheckpoint(String),
    /// A segment worker panicked; the payload message is captured.
    SegmentPanic(String),
    /// A measure window never produced both of its marks (the detailed
    /// simulation ended before the window closed).
    WindowInvalid(&'static str),
    /// The shadow-profile cycle model produced a non-finite fit and was
    /// discarded.
    ModelDegenerate(&'static str),
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::BadCheckpoint(m) => write!(f, "bad checkpoint: {m}"),
            SampleError::SegmentPanic(m) => write!(f, "segment panicked: {m}"),
            SampleError::WindowInvalid(m) => write!(f, "invalid measure window: {m}"),
            SampleError::ModelDegenerate(m) => write!(f, "degenerate cycle model: {m}"),
        }
    }
}

impl std::error::Error for SampleError {}

/// How the engine recovered from one [`SampleError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultRecovery {
    /// The serial retry from the serialized checkpoint succeeded; the
    /// segment's windows are identical to a healthy run's.
    Retried,
    /// Retry failed too; the segment was re-simulated in full detail from
    /// the previous good checkpoint (exact, slower, still deterministic).
    ExactReplay,
    /// The faulty component was switched off (e.g. the cycle model); the
    /// estimate falls back to the purely stratified path.
    Disabled,
}

/// One recovered fault, recorded in [`SampledResult::segment_faults`] so a
/// degraded run is distinguishable from a healthy one even when the
/// estimates agree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentFault {
    /// Index of the faulty segment job, or [`u64::MAX`] for whole-run
    /// faults (phase-1 checkpointing, the cycle model).
    pub segment: u64,
    /// What went wrong.
    pub error: SampleError,
    /// How the run recovered.
    pub recovery: FaultRecovery,
}

/// A segment re-simulated in full detail by the exact-replay fallback: its
/// instruction range contributes **measured** cycles to the whole-run
/// estimate instead of an extrapolation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactSegment {
    /// Index of the segment job this replay replaced.
    pub segment: u64,
    /// Dynamic instruction range `[start, end)` covered exactly.
    pub range: (u64, u64),
    /// Instructions retired inside the range.
    pub insts: u64,
    /// Cycles the range took in full-detail simulation.
    pub cycles: u64,
}

impl ExactSegment {
    /// Width of the exactly-covered instruction range.
    pub fn width(&self) -> u64 {
        self.range.1.saturating_sub(self.range.0)
    }
}

/// The outcome of a sampled run: exact architectural results (the whole
/// program executed functionally) plus timing *estimates* extrapolated from
/// the measurement intervals.
#[derive(Clone, Debug)]
pub struct SampledResult {
    /// The detailed head stratum (program start measured exactly, cold
    /// start included), when [`crate::SampleConfig::head`] was nonzero.
    pub head: Option<IntervalStat>,
    /// Per-interval steady-state measurements, in program order.
    pub intervals: Vec<IntervalStat>,
    /// Where the periodic stratum grid begins (the configured head length).
    pub grid_start: u64,
    /// The sampling period (stratum width); 0 disables stratified
    /// extrapolation and falls back to the pooled ratio estimator.
    pub period: u64,
    /// Dynamic instructions the program executed (exact).
    pub total_insts: u64,
    /// Whether the program ran to its `halt` (exact).
    pub halted: bool,
    /// Output checksum (exact — sampling never changes results).
    pub checksum: u64,
    /// Architectural state digest at the end (exact).
    pub digest: u64,
    /// Instructions simulated in detail, including warmup and drain padding
    /// (the cost side of the sampling bargain).
    pub detailed_insts: u64,
    /// Execution error that ended the run early, if any.
    pub error: Option<ExecError>,
    /// Model-assisted whole-run cycle estimate, when the shadow-profile
    /// cycle model fit the measured windows well enough to be trusted (see
    /// the crate docs); preferred by [`SampledResult::est_cpi`] when set.
    pub model_cycles: Option<f64>,
    /// R² of the shadow-profile cycle model on the measured windows (set
    /// whenever a fit was attempted, even if rejected).
    pub model_r2: Option<f64>,
    /// Relative shift in the beyond-L1 service mix (L2-/memory-served
    /// access rates) between measured and unmeasured strata, from the
    /// shadow profile. Large values mean the unmeasured part of the
    /// program behaves unlike anything a window saw, so the estimate is an
    /// extrapolation out of distribution; [`crate::run_sampled_auto`]
    /// escalates to a denser rung or the exact fallback in that case.
    /// `None` when every stratum was measured (or none were).
    pub feature_drift: Option<f64>,
    /// Merged pipeline trace over every detailed window (head stratum
    /// first, then the periodic windows in program order), present only
    /// when `MachineConfig::trace` was set. Each window's events are
    /// rebased onto the end of the previous one, so the merged timeline is
    /// continuous and deterministic — byte-identical at any `RENO_THREADS`.
    pub trace: Option<Box<PipelineTrace>>,
    /// Every fault the run recovered from, in deterministic order (segment
    /// index, then discovery order). Empty for a healthy run.
    pub segment_faults: Vec<SegmentFault>,
    /// Instruction ranges covered exactly by the replay fallback, in
    /// segment order. Their cycles are charged exactly by the estimators.
    pub exact_segments: Vec<ExactSegment>,
}

impl SampledResult {
    /// Instructions inside measure windows (head stratum included).
    pub fn measured_insts(&self) -> u64 {
        self.head
            .iter()
            .chain(&self.intervals)
            .map(|i| i.insts)
            .sum()
    }

    /// Cycles inside measure windows (head stratum included).
    pub fn measured_cycles(&self) -> u64 {
        self.head
            .iter()
            .chain(&self.intervals)
            .map(|i| i.cycles)
            .sum()
    }

    /// Steady-state CPI estimate: the ratio estimator over the periodic
    /// windows (total measured cycles / instructions, head excluded).
    pub fn steady_cpi(&self) -> f64 {
        let insts: u64 = self.intervals.iter().map(|i| i.insts).sum();
        if insts == 0 {
            return 0.0;
        }
        let cycles: u64 = self.intervals.iter().map(|i| i.cycles).sum();
        cycles as f64 / insts as f64
    }

    /// Whole-run cycle estimate (unrounded), fully stratified:
    ///
    /// * the head stratum's cycles are measured exactly;
    /// * every periodic stratum that holds a measured window extrapolates
    ///   at *that window's* CPI over the stratum's instructions — so long
    ///   program phases are represented in proportion to their length by
    ///   construction, instead of relying on the window population to
    ///   average out;
    /// * any remaining instructions (strata without a window, the tail
    ///   fragment) extrapolate at the pooled steady CPI.
    fn est_cycles_f(&self) -> f64 {
        if self.total_insts == 0 {
            return 0.0;
        }
        if let Some(mc) = self.model_cycles {
            return mc;
        }
        let exact_cycles: u64 = self.exact_segments.iter().map(|e| e.cycles).sum();
        let exact_width: u64 = self.exact_segments.iter().map(ExactSegment::width).sum();
        if self.period == 0 {
            // Pooled ratio fallback (head and exact replays still exact).
            let rest = self
                .total_insts
                .saturating_sub(self.head.map_or(0, |h| h.insts))
                .saturating_sub(exact_width);
            return self.head.map_or(0.0, |h| h.cycles as f64)
                + exact_cycles as f64
                + self.steady_cpi() * rest as f64;
        }
        let mut cycles = exact_cycles as f64;
        let mut covered = exact_width.min(self.total_insts);
        if let Some(h) = &self.head {
            cycles += h.cycles as f64;
            covered += h.insts.min(self.total_insts);
        }
        for i in &self.intervals {
            let s0 = self
                .grid_start
                .saturating_add(i.stratum.saturating_mul(self.period));
            let s1 = s0.saturating_add(self.period).min(self.total_insts);
            if s1 > s0 {
                let w = s1 - s0;
                cycles += i.cpi() * w as f64;
                covered += w;
            }
        }
        let rest = self.total_insts.saturating_sub(covered);
        let fallback = if self.intervals.is_empty() {
            self.head.map_or(0.0, |h| h.cpi())
        } else {
            self.steady_cpi()
        };
        cycles + fallback * rest as f64
    }

    /// Whole-run CPI estimate (see [`SampledResult::est_cycles`] for the
    /// stratified methodology).
    pub fn est_cpi(&self) -> f64 {
        if self.total_insts == 0 {
            0.0
        } else {
            self.est_cycles_f() / self.total_insts as f64
        }
    }

    /// Whole-run IPC estimate (reciprocal of [`SampledResult::est_cpi`]).
    pub fn est_ipc(&self) -> f64 {
        let cpi = self.est_cpi();
        if cpi == 0.0 {
            0.0
        } else {
            1.0 / cpi
        }
    }

    /// Whole-run cycle-count estimate (stratified; see
    /// [`SampledResult::est_cpi`]).
    pub fn est_cycles(&self) -> u64 {
        self.est_cycles_f().round() as u64
    }

    /// Estimated RENO elimination rate (% of renamed instructions
    /// eliminated, over all measured windows, head included).
    pub fn est_elimination_pct(&self) -> f64 {
        let renamed: u64 = self
            .head
            .iter()
            .chain(&self.intervals)
            .map(|i| i.renamed)
            .sum();
        if renamed == 0 {
            0.0
        } else {
            let elim: u64 = self
                .head
                .iter()
                .chain(&self.intervals)
                .map(|i| i.eliminated)
                .sum();
            elim as f64 * 100.0 / renamed as f64
        }
    }

    /// The sampling-error bound: half-width of the 95% confidence interval
    /// of the steady-state CPI estimate, relative to the mean, in percent.
    /// Zero when fewer than two intervals were measured.
    ///
    /// Because the windows are **stratified** (one per period, in program
    /// order), the classical iid formula grossly overstates the error for
    /// programs whose CPI drifts smoothly — the strata already capture the
    /// drift. The standard estimator for systematic/stratified samples uses
    /// successive differences instead:
    /// `Var(mean) ≈ Σ (c[i+1] - c[i])² / (2 n (n-1))`,
    /// which charges only the short-range roughness neighbouring strata
    /// cannot explain. The bound is `1.96 · sqrt(Var) / mean · 100`.
    pub fn cpi_ci95_rel_pct(&self) -> f64 {
        let n = self.intervals.len();
        if n < 2 {
            return 0.0;
        }
        let cpis: Vec<f64> = self.intervals.iter().map(IntervalStat::cpi).collect();
        let mean = cpis.iter().sum::<f64>() / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let sum_sq_diff: f64 = cpis.windows(2).map(|w| (w[1] - w[0]) * (w[1] - w[0])).sum();
        let var_mean = sum_sq_diff / (2.0 * n as f64 * (n - 1) as f64);
        1.96 * var_mean.sqrt() / mean * 100.0
    }

    /// Fraction of the program simulated in detail (warmup included) — the
    /// knob that trades accuracy for speed.
    pub fn detailed_fraction(&self) -> f64 {
        if self.total_insts == 0 {
            0.0
        } else {
            self.detailed_insts as f64 / self.total_insts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(start: u64, insts: u64, cycles: u64) -> IntervalStat {
        IntervalStat {
            start_inst: start,
            stratum: 0,
            insts,
            cycles,
            renamed: insts,
            eliminated: insts / 5,
            stats: SimStats::default(),
        }
    }

    /// A result with `period == 0`: estimators use the pooled-ratio path.
    fn sampled(intervals: Vec<IntervalStat>, total: u64) -> SampledResult {
        SampledResult {
            head: None,
            intervals,
            grid_start: 0,
            period: 0,
            total_insts: total,
            halted: true,
            checksum: 0,
            digest: 0,
            detailed_insts: 0,
            error: None,
            model_cycles: None,
            model_r2: None,
            feature_drift: None,
            trace: None,
            segment_faults: Vec::new(),
            exact_segments: Vec::new(),
        }
    }

    #[test]
    fn exact_segments_are_charged_exactly_not_extrapolated() {
        // Steady windows say CPI 0.5; the exact replay covers 2000 insts at
        // CPI 2.0 (a pathological phase sampling would have mispriced).
        let mut r = sampled(
            vec![interval(2000, 400, 200), interval(6000, 400, 200)],
            10_000,
        );
        r.exact_segments.push(ExactSegment {
            segment: 3,
            range: (8000, 10_000),
            insts: 2000,
            cycles: 4000,
        });
        // est = 4000 (exact) + 0.5 * 8000 (pooled rest) = 8000.
        assert_eq!(r.est_cycles(), 8000);
        // The stratified path charges the same range exactly as well.
        r.grid_start = 0;
        r.period = 1000;
        let strat = r.est_cycles();
        assert!(
            strat >= 4000 + 400 + 400,
            "exact + measured strata: {strat}"
        );
    }

    #[test]
    fn ratio_estimator_weights_by_instructions() {
        let r = sampled(
            vec![interval(0, 100, 200), interval(1000, 300, 300)],
            10_000,
        );
        // (200 + 300) / (100 + 300) = 1.25, not the unweighted mean of 2.0
        // and 1.0.
        assert!((r.est_cpi() - 1.25).abs() < 1e-12);
        assert!((r.est_ipc() - 0.8).abs() < 1e-12);
        assert_eq!(r.est_cycles(), 12_500);
        assert!((r.est_elimination_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn ci_is_zero_without_dispersion_and_grows_with_it() {
        let tight = sampled(vec![interval(0, 100, 150); 4], 10_000);
        assert_eq!(tight.cpi_ci95_rel_pct(), 0.0, "identical intervals");
        let single = sampled(vec![interval(0, 100, 150)], 10_000);
        assert_eq!(single.cpi_ci95_rel_pct(), 0.0, "n < 2");
        let loose = sampled(
            vec![
                interval(0, 100, 100),
                interval(1, 100, 200),
                interval(2, 100, 300),
            ],
            10_000,
        );
        assert!(loose.cpi_ci95_rel_pct() > 10.0);
    }

    #[test]
    fn stratified_estimator_weights_strata_by_position() {
        // Two-phase program: strata 0-1 run at CPI 1.0, strata 2-3 at 3.0.
        // total = grid 1000 + 4 strata x 1000 = 5000, head CPI 2.0.
        let mut r = sampled(
            vec![
                IntervalStat {
                    stratum: 0,
                    ..interval(1200, 100, 100)
                },
                IntervalStat {
                    stratum: 1,
                    ..interval(2200, 100, 100)
                },
                IntervalStat {
                    stratum: 2,
                    ..interval(3200, 100, 300)
                },
                IntervalStat {
                    stratum: 3,
                    ..interval(4200, 100, 300)
                },
            ],
            5000,
        );
        r.grid_start = 1000;
        r.period = 1000;
        r.head = Some(interval(0, 1000, 2000));
        // est = 2000 (head) + 1000*1 + 1000*1 + 1000*3 + 1000*3 = 10000.
        assert_eq!(r.est_cycles(), 10_000);
        assert!((r.est_cpi() - 2.0).abs() < 1e-12);
        // The pooled ratio would have said (2000 + 800) / 1400 = 2.0 for the
        // measured insts but misweighted the phases had they been unequal:
        // shrink phase two to one stratum (total 4000).
        r.total_insts = 4000;
        r.intervals.pop();
        assert_eq!(r.est_cycles(), 2000 + 1000 + 1000 + 3000);
    }

    #[test]
    fn stratified_estimate_charges_the_head_exactly() {
        // Head: 1000 insts at CPI 3.0 (expensive startup). Steady windows:
        // CPI 0.5. Total 10_000 insts.
        let mut r = sampled(
            vec![interval(2000, 400, 200), interval(6000, 400, 200)],
            10_000,
        );
        r.head = Some(interval(0, 1000, 3000));
        // est = (3000 + 0.5 * 9000) / 10000 = 0.75; the plain ratio over all
        // windows (3400/1800 = 1.89) would badly overweight the head.
        assert!((r.est_cpi() - 0.75).abs() < 1e-12);
        assert!((r.steady_cpi() - 0.5).abs() < 1e-12);
        assert_eq!(r.measured_insts(), 1800);
        assert_eq!(r.measured_cycles(), 3400);
        assert_eq!(r.est_cycles(), 7500);
    }

    #[test]
    fn empty_run_degenerates_to_zero() {
        let r = sampled(vec![], 0);
        assert_eq!(r.est_cpi(), 0.0);
        assert_eq!(r.est_ipc(), 0.0);
        assert_eq!(r.est_cycles(), 0);
        assert_eq!(r.detailed_fraction(), 0.0);
    }
}
