use crate::{ExactSegment, FaultRecovery, IntervalStat, SampleError, SampledResult, SegmentFault};
use reno_func::{BlockCursor, Checkpoint, Cpu, DecodedProgram, DynInst, ExecError, Memory};
use reno_isa::Program;
use reno_mem::MemHierarchy;
use reno_par::{run_caught, try_par_map, JobPanic};
use reno_sim::{classify_control, MachineConfig, Simulator, WarmState};
use reno_trace::PipelineTrace;
use reno_uarch::FrontEnd;

/// `reno-chaos` site: phase-1 checkpoint serialization, context = the
/// 1-based checkpoint ordinal. `corrupt` poisons the stored bytes (caught
/// later by pass validation or segment restore); `panic` kills the serial
/// pass itself.
pub const FP_PASS_CHECKPOINT: &str = "sample:pass-checkpoint";
/// `reno-chaos` site: checkpoint deserialization at a segment worker's
/// restore, context = segment index.
pub const FP_SEGMENT_RESTORE: &str = "sample:segment-restore";
/// `reno-chaos` site: the warm functional replay before each detailed
/// window, context = segment index.
pub const FP_WARM_REPLAY: &str = "sample:warm-replay";
/// `reno-chaos` site: each detailed measure window (the head stratum
/// included), context = segment index.
pub const FP_MEASURE_WINDOW: &str = "sample:measure-window";

/// Every registered `reno-chaos` failpoint site in this crate. The
/// `crash_sample` suite enumerates this list and proves a fault injected at
/// each site still yields a deterministic, valid [`SampledResult`].
pub const FAILPOINT_SITES: &[&str] = &[
    FP_PASS_CHECKPOINT,
    FP_SEGMENT_RESTORE,
    FP_WARM_REPLAY,
    FP_MEASURE_WINDOW,
];

/// Extra fuel past the measure-window end so the end-boundary instruction
/// retires with the pipeline still in full flight (covers the ROB plus the
/// fetch buffer of any supported machine shape).
const DRAIN_PAD: u64 = 256;

/// Cycle safety net per detailed interval (the deadlock guard inside the
/// simulator fires long before this).
const INTERVAL_MAX_CYCLES: u64 = 1 << 26;

/// Minimum sampling periods per parallel segment: the serial functional
/// pass takes one checkpoint per segment, and each checkpoint-delimited
/// segment becomes one independent job for the worker pool.
const SEG_PERIODS: u64 = 8;

/// Minimum warm-margin periods: a segment's checkpoint is taken this many
/// periods *before* its first stratum, and the worker functionally replays
/// the margin (warming caches, predictors, and the shadow profile) before
/// any window is measured, so windows near a segment head are not measured
/// against cold structures.
const WARM_PERIODS: u64 = 2;

/// Minimum warm-margin *instructions*: enough functional warming to
/// rebuild beyond-L1 state (an L2 directory refill horizon). Without this
/// floor, dense sampling (small periods) would produce short segments
/// whose first windows run against half-cold caches — measured as a
/// +3..8% CPI bias on large-footprint workloads (mcf, mpg2).
const MIN_WARM_INSTS: u64 = 1 << 17;

/// The segmentation shape for a given sampling period: `(periods per
/// segment, warm-margin periods)`. The margin covers at least
/// [`MIN_WARM_INSTS`], and a segment is at least four margins long so the
/// replay overhead stays ≤ 25%. Derived from the config alone — never from
/// the host — so the merged result is byte-identical at any
/// `RENO_THREADS`: thread count changes wall-clock, not bytes.
fn segment_shape(period: u64) -> (u64, u64) {
    let m = WARM_PERIODS.max(MIN_WARM_INSTS.div_ceil(period.max(1)));
    let k = SEG_PERIODS.max(4 * m);
    (k, m)
}

/// Shape of a sampled run: how much is simulated in detail, and how often.
///
/// Instruction counts are dynamic instructions. Every `period` instructions,
/// the engine runs one detailed window of `warmup + interval` instructions:
/// the first `warmup` refill the pipeline and are discarded, the next
/// `interval` are measured. Everything else runs functionally with
/// microarchitectural warming.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleConfig {
    /// Detailed instructions before each measure window whose statistics
    /// are discarded (pipeline refill after the functional gap).
    pub warmup: u64,
    /// Measured instructions per interval.
    pub interval: u64,
    /// One detailed window begins every `period` instructions.
    pub period: u64,
    /// Detailed **head stratum**: the first `head` instructions are measured
    /// as one window, cold start included, before periodic sampling begins.
    /// Program startup (data-structure initialization, cold caches) is a
    /// one-time phase whose CPI can be several times the steady state;
    /// sparse windows either hit or miss it, swinging the whole-run estimate.
    /// Measuring it exactly and extrapolating only the steady remainder
    /// removes that failure mode (stratified sampling).
    pub head: u64,
    /// Hard cap on dynamic instructions (the fast-forward stops here as if
    /// the program had halted); `u64::MAX` = run to `halt`.
    pub max_insts: u64,
    /// Hard cap on measured intervals; `None` = one per period boundary.
    /// The cap is applied when the run is planned (the first `n` strata are
    /// measured), so a window that happens to measure nothing does not free
    /// a slot for a later stratum.
    pub max_intervals: Option<usize>,
    /// Place each detailed window at a deterministic pseudo-random offset
    /// inside its period (default), instead of always at the period start.
    /// Strictly systematic placement aliases with loop phase structure —
    /// when the period is near-commensurate with a program phase, every
    /// window lands on the same phase point and the estimate inherits its
    /// bias; the jitter breaks the resonance. Offsets come from a fixed
    /// SplitMix64 hash of the period index, so runs stay bit-reproducible.
    pub jitter: bool,
}

impl SampleConfig {
    /// Builds a configuration measuring `interval` instructions after
    /// `warmup` detailed-warmup instructions, once every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `warmup + interval > period`.
    pub fn new(warmup: u64, interval: u64, period: u64) -> SampleConfig {
        let sc = SampleConfig {
            warmup,
            interval,
            period,
            head: 0,
            max_insts: u64::MAX,
            max_intervals: None,
            jitter: true,
        };
        sc.validate();
        sc
    }

    /// Disables window-offset jitter (windows then start exactly at period
    /// boundaries — useful for tiling tests and debugging).
    #[must_use]
    pub fn without_jitter(mut self) -> SampleConfig {
        self.jitter = false;
        self
    }

    /// Measures the first `head` instructions in detail as a dedicated
    /// stratum (see [`SampleConfig::head`]).
    #[must_use]
    pub fn with_head(mut self, head: u64) -> SampleConfig {
        self.head = head;
        self
    }

    /// Caps the dynamic instruction count (for comparisons against fueled
    /// full runs).
    #[must_use]
    pub fn with_max_insts(mut self, max_insts: u64) -> SampleConfig {
        self.max_insts = max_insts;
        self
    }

    /// Caps the number of measured intervals.
    #[must_use]
    pub fn with_max_intervals(mut self, n: usize) -> SampleConfig {
        self.max_intervals = Some(n);
        self
    }

    /// Detailed instructions per period (warmup + measure, before drain
    /// padding).
    pub fn detailed_per_period(&self) -> u64 {
        self.warmup + self.interval
    }

    fn validate(&self) {
        assert!(self.interval > 0, "a measure interval needs instructions");
        assert!(
            self.detailed_per_period() <= self.period,
            "warmup + interval must fit inside the sampling period"
        );
    }
}

impl Default for SampleConfig {
    /// The tuning used by the validation harness at default workload scale:
    /// 1/8 of the program in detail, intervals of 1.5k instructions.
    fn default() -> SampleConfig {
        SampleConfig::new(500, 1500, 16_000)
    }
}

/// Feeds one functional instruction to the warming hooks, mirroring what
/// the detailed front end and memory pipeline would have touched on the
/// correct path.
struct Warmer {
    line_bytes: u64,
    last_line: u64,
}

impl Warmer {
    fn new(cfg: &MachineConfig) -> Warmer {
        Warmer {
            line_bytes: cfg.hier.l1i.line_bytes as u64,
            last_line: u64::MAX,
        }
    }

    fn observe(&mut self, d: &DynInst, warm: &mut WarmState) {
        let addr = Program::inst_addr(d.pc);
        let line = addr / self.line_bytes;
        if line != self.last_line {
            warm.mem.warm_inst(addr);
            self.last_line = line;
        }
        let op = d.inst.op;
        if op.is_load() {
            warm.mem.warm_data(d.mem_addr, false);
        } else if op.is_store() {
            warm.mem.warm_data(d.mem_addr, true);
        }
        if op.is_control() {
            let _ =
                warm.frontend
                    .process(d.pc as u64, classify_control(d), d.taken, d.next_pc as u64);
        }
    }
}

/// SplitMix64 finalizer: hashes the period index into that period's window
/// offset. Fixed constants, no state — sampled runs are bit-reproducible.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Cumulative cost features over a dynamic-instruction range, collected by
/// the shadow profile: the drivers of cycle cost a functional pass can see.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Features {
    insts: u64,
    /// Data accesses served by the L2 (L1 misses).
    l2: u64,
    /// Data accesses served by memory (L2 misses).
    mem: u64,
    /// Mispredicted control instructions.
    mispred: u64,
}

impl Features {
    fn minus(&self, o: &Features) -> Features {
        Features {
            insts: self.insts - o.insts,
            l2: self.l2 - o.l2,
            mem: self.mem - o.mem,
            mispred: self.mispred - o.mispred,
        }
    }

    fn add(&mut self, o: &Features) {
        self.insts += o.insts;
        self.l2 += o.l2;
        self.mem += o.mem;
        self.mispred += o.mispred;
    }

    fn vec(&self) -> [f64; 4] {
        [
            self.insts as f64,
            self.l2 as f64,
            self.mem as f64,
            self.mispred as f64,
        ]
    }
}

/// Shadow microarchitectural structures observing every dynamic instruction
/// a segment executes, uniformly. They are never handed to the simulator
/// and never reset, so the feature counts of any two instruction ranges
/// inside one segment are directly comparable — unlike the warming
/// structures, which detailed intervals train more precisely over the
/// regions they cover.
struct Shadow {
    mem: MemHierarchy,
    frontend: FrontEnd,
    cum: Features,
}

impl Shadow {
    fn new(cfg: &MachineConfig) -> Shadow {
        Shadow {
            mem: MemHierarchy::new(cfg.hier),
            frontend: FrontEnd::new(cfg.bpred, cfg.btb, cfg.ras_entries),
            cum: Features::default(),
        }
    }

    #[inline]
    fn observe(&mut self, d: &DynInst) {
        self.cum.insts += 1;
        let op = d.inst.op;
        if op.is_load() || op.is_store() {
            match self.mem.warm_data(d.mem_addr, op.is_store()) {
                reno_mem::ServedBy::L1 => {}
                reno_mem::ServedBy::L2 => self.cum.l2 += 1,
                reno_mem::ServedBy::Mem => self.cum.mem += 1,
            }
        }
        if op.is_control() {
            let ok =
                self.frontend
                    .process(d.pc as u64, classify_control(d), d.taken, d.next_pc as u64);
            self.cum.mispred += u64::from(!ok);
        }
    }
}

/// Snapshot points of the shadow feature counters: every stratum boundary
/// (periodic) plus explicitly registered instants (measure-window edges).
struct Boundaries {
    explicit: std::collections::VecDeque<u64>,
    next_periodic: u64,
    period: u64,
    snaps: Vec<(u64, Features)>,
}

impl Boundaries {
    fn new(grid_start: u64, period: u64) -> Boundaries {
        Boundaries {
            explicit: std::collections::VecDeque::new(),
            next_periodic: grid_start,
            period: period.max(1),
            snaps: Vec::new(),
        }
    }

    /// Registers a future snapshot instant (must not lie in the past).
    fn insert(&mut self, inst: u64) {
        let pos = self.explicit.partition_point(|&x| x < inst);
        if self.explicit.get(pos) != Some(&inst) {
            self.explicit.insert(pos, inst);
        }
    }

    /// Takes any snapshots whose instant has been reached.
    #[inline]
    fn cross(&mut self, executed: u64, cum: &Features) {
        while self.explicit.front().is_some_and(|&b| b <= executed)
            || self.next_periodic <= executed
        {
            let e = self.explicit.front().copied().unwrap_or(u64::MAX);
            let b = e.min(self.next_periodic);
            if b == self.next_periodic {
                self.next_periodic += self.period;
            }
            if b == e {
                self.explicit.pop_front();
            }
            if self.snaps.last().map(|&(i, _)| i) != Some(b) {
                self.snaps.push((b, *cum));
            }
        }
    }

    /// The cumulative features at `inst`, if it was snapped (or the final
    /// totals when `inst` is at/past the end of the run).
    fn at(&self, inst: u64, total: u64, final_cum: &Features) -> Option<Features> {
        if inst >= total {
            return Some(*final_cum);
        }
        self.snaps
            .binary_search_by_key(&inst, |&(i, _)| i)
            .ok()
            .map(|k| self.snaps[k].1)
    }
}

/// The jittered checkpoint position for stratum `s` of width `period`
/// starting at `grid_start`: a deterministic offset within the stratum's
/// slack (so the whole window fits inside the stratum).
fn stratum_position(sc: &SampleConfig, grid_start: u64, period: u64, s: u64) -> u64 {
    let slack = period.saturating_sub(sc.detailed_per_period() + DRAIN_PAD);
    let offset = if sc.jitter && slack > 0 {
        // Salt with the period so refinement rounds draw fresh offsets.
        mix64(s ^ period) % (slack + 1)
    } else {
        0
    };
    grid_start
        .saturating_add(s.saturating_mul(period))
        .saturating_add(offset)
}

/// Where the serial pass checkpoints segment `j` (`j >= 1`) for a
/// segmentation of `k` periods with an `m`-period warm margin: its first
/// stratum's start minus the margin.
fn segment_checkpoint_position(grid_start: u64, period: u64, k: u64, m: u64, j: u64) -> u64 {
    grid_start + (j * k - m) * period
}

/// Errors raised when reusing a serialized [`CheckpointPass`]: either the
/// bytes are not a valid pass image, or the pass does not match the
/// (program, config) it is being replayed against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PassError {
    /// The byte stream does not start with the pass magic.
    BadMagic,
    /// The format version is not supported.
    BadVersion(u32),
    /// The byte stream ended early, carries trailing garbage, or declares
    /// lengths its bytes cannot back.
    Truncated,
    /// A field holds a value [`CheckpointPass::to_bytes`] can never produce.
    BadField(&'static str),
    /// An embedded checkpoint failed [`Checkpoint::from_bytes`] validation.
    Checkpoint(reno_func::CheckpointError),
    /// The pass's checkpoints do not line up with the segmentation the
    /// sampling config derives — it was taken for a different program,
    /// scale, or sampling shape.
    Mismatch {
        /// Segment index whose checkpoint is wrong or missing.
        segment: u64,
        /// Dynamic-instruction position the segmentation expects.
        expected: u64,
        /// Position the checkpoint actually carries (`None` = missing).
        got: Option<u64>,
    },
}

impl std::fmt::Display for PassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassError::BadMagic => write!(f, "not a reno checkpoint pass (bad magic)"),
            PassError::BadVersion(v) => write!(f, "unsupported checkpoint-pass version {v}"),
            PassError::Truncated => write!(f, "checkpoint-pass bytes truncated or oversized"),
            PassError::BadField(which) => {
                write!(
                    f,
                    "checkpoint-pass field `{which}` holds a non-canonical value"
                )
            }
            PassError::Checkpoint(e) => write!(f, "embedded checkpoint invalid: {e}"),
            PassError::Mismatch {
                segment,
                expected,
                got,
            } => write!(
                f,
                "checkpoint pass does not fit this run: segment {segment} expects a \
                 checkpoint at instruction {expected}, pass carries {got:?}"
            ),
        }
    }
}

impl std::error::Error for PassError {}

const PASS_MAGIC: &[u8; 8] = b"RENOPASS";
const PASS_VERSION: u32 = 1;

/// Phase 1 of a sampled run — the serial functional pass over the whole
/// program: exact architectural totals, plus one dirty-page checkpoint per
/// future segment. Runs on the predecoded-block engine with no warming or
/// shadow cost, so it is the cheap serial fraction of a sampled run.
///
/// The pass is **machine-config-independent**: checkpoints are purely
/// architectural and their positions derive from the sampling shape alone
/// (head, period), never from ROB sizes, cache shapes, or RENO settings.
/// One pass per (program, sampling shape) therefore serves an *arbitrary
/// sweep of machine configs* via [`run_sampled_with_pass`] — the
/// amortization the `reno-dse` checkpoint store is built on. The
/// serialization ([`CheckpointPass::to_bytes`] / `from_bytes`) is strict:
/// `from_bytes` accepts exactly the image of `to_bytes` (every embedded
/// checkpoint re-validated through the hardened
/// [`Checkpoint::from_bytes`]), so a corrupted store entry is rejected as a
/// structured error, never trusted and never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPass {
    /// Serialized checkpoints for segments `1..`, in segment order
    /// (`checkpoints[j - 1]` belongs to segment `j`).
    pub checkpoints: Vec<Vec<u8>>,
    /// Exact dynamic-instruction count of the (possibly capped) run.
    pub total_insts: u64,
    /// Whether the program ran to its `halt`.
    pub halted: bool,
    /// Output checksum of the functional run.
    pub checksum: u64,
    /// Architectural state digest at the end of the functional run.
    pub digest: u64,
    /// Functional execution error, if the program misbehaved (never set on
    /// a pass that [`CheckpointPass::to_bytes`] will serialize).
    pub error: Option<ExecError>,
}

impl CheckpointPass {
    /// Runs the serial functional pass for `program` under sampling shape
    /// `sc` (the period taken from `sc.period`). See the type docs.
    pub fn compute(program: &Program, sc: &SampleConfig) -> CheckpointPass {
        functional_pass(program, sc, sc.period)
    }

    /// Serializes to a self-describing little-endian byte stream.
    ///
    /// # Panics
    ///
    /// Panics if the pass recorded a functional [`ExecError`] — an errored
    /// pass describes a broken run and must not enter a persistent store.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(
            self.error.is_none(),
            "refusing to serialize a checkpoint pass that recorded an exec error"
        );
        let payload: usize = self.checkpoints.iter().map(|c| 4 + c.len()).sum();
        let mut out = Vec::with_capacity(8 + 4 + 8 * 4 + 4 + payload);
        out.extend_from_slice(PASS_MAGIC);
        out.extend_from_slice(&PASS_VERSION.to_le_bytes());
        out.extend_from_slice(&self.total_insts.to_le_bytes());
        out.extend_from_slice(&u64::from(self.halted).to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
        out.extend_from_slice(&self.digest.to_le_bytes());
        out.extend_from_slice(&(self.checkpoints.len() as u32).to_le_bytes());
        for ck in &self.checkpoints {
            out.extend_from_slice(&(ck.len() as u32).to_le_bytes());
            out.extend_from_slice(ck);
        }
        out
    }

    /// Deserializes a pass previously produced by
    /// [`CheckpointPass::to_bytes`].
    ///
    /// The parser is strict: declared counts and lengths are validated
    /// against the remaining bytes *before* any allocation (a length lie
    /// cannot trigger a huge reserve), every embedded checkpoint must pass
    /// [`Checkpoint::from_bytes`], and the checkpoints must be in strictly
    /// increasing `executed` order. Accepted images re-serialize to exactly
    /// the input bytes.
    ///
    /// # Errors
    ///
    /// See [`PassError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<CheckpointPass, PassError> {
        struct R<'a> {
            bytes: &'a [u8],
            pos: usize,
        }
        impl<'a> R<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], PassError> {
                let end = self.pos.checked_add(n).ok_or(PassError::Truncated)?;
                if end > self.bytes.len() {
                    return Err(PassError::Truncated);
                }
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            fn u64(&mut self) -> Result<u64, PassError> {
                Ok(u64::from_le_bytes(
                    self.take(8)?.try_into().expect("8 bytes"),
                ))
            }
            fn u32(&mut self) -> Result<u32, PassError> {
                Ok(u32::from_le_bytes(
                    self.take(4)?.try_into().expect("4 bytes"),
                ))
            }
        }
        let mut r = R { bytes, pos: 0 };
        if r.take(8)? != PASS_MAGIC {
            return Err(PassError::BadMagic);
        }
        let version = r.u32()?;
        if version != PASS_VERSION {
            return Err(PassError::BadVersion(version));
        }
        let total_insts = r.u64()?;
        let halted = match r.u64()? {
            0 => false,
            1 => true,
            _ => return Err(PassError::BadField("halted")),
        };
        let checksum = r.u64()?;
        let digest = r.u64()?;
        let n = r.u32()? as usize;
        // Each record carries at least its 4-byte length prefix: a claimed
        // count the remaining bytes cannot back is rejected before the
        // count sizes any allocation.
        if n.saturating_mul(4) > bytes.len() - r.pos {
            return Err(PassError::Truncated);
        }
        let mut checkpoints = Vec::with_capacity(n);
        let mut prev_exec = None;
        for _ in 0..n {
            let len = r.u32()? as usize;
            let ck = r.take(len)?;
            let parsed = Checkpoint::from_bytes(ck).map_err(PassError::Checkpoint)?;
            if prev_exec.is_some_and(|p| p >= parsed.executed()) {
                return Err(PassError::BadField("checkpoint order"));
            }
            prev_exec = Some(parsed.executed());
            checkpoints.push(ck.to_vec());
        }
        if r.pos != bytes.len() {
            return Err(PassError::Truncated);
        }
        Ok(CheckpointPass {
            checkpoints,
            total_insts,
            halted,
            checksum,
            digest,
            error: None,
        })
    }
}

fn functional_pass(program: &Program, sc: &SampleConfig, period: u64) -> CheckpointPass {
    let (k, m) = segment_shape(period);
    let mut cpu = Cpu::new(program);
    let mut dp = DecodedProgram::new(program);
    let mut checkpoints = Vec::new();
    let mut error = None;
    let mut j = 1u64;
    while error.is_none() && !cpu.halted() {
        let pos = segment_checkpoint_position(sc.head, period, k, m, j);
        if pos >= sc.max_insts {
            break;
        }
        if let Err(e) = cpu.advance_decoded(&mut dp, pos) {
            error = Some(e);
            break;
        }
        if cpu.halted() {
            break;
        }
        let ck = Checkpoint::take_with_dirty_pages(&cpu, &cpu.mem().dirty_pages_sorted());
        let mut bytes = ck.to_bytes();
        // `panic` here kills the serial pass (retried, then the full-detail
        // fallback); `corrupt` poisons this checkpoint's stored bytes, which
        // pass validation or the owning segment's restore must catch.
        reno_chaos::failpoint_bytes!(FP_PASS_CHECKPOINT, j, &mut bytes);
        checkpoints.push(bytes);
        j += 1;
    }
    if error.is_none() {
        if let Err(e) = cpu.advance_decoded(&mut dp, sc.max_insts) {
            error = Some(e);
        }
    }
    CheckpointPass {
        checkpoints,
        total_insts: cpu.executed(),
        halted: cpu.halted(),
        checksum: cpu.checksum(),
        digest: cpu.state_digest(),
        error,
    }
}

/// One checkpoint-delimited segment of a sampled run — an independent,
/// deterministic job for the worker pool.
struct SegmentJob {
    index: u64,
    /// Serialized checkpoint to resume from (`None` = fresh machine,
    /// segment 0 only). Workers deserialize and restore, so every segment
    /// exercises the full checkpoint save/restore path.
    ck: Option<Vec<u8>>,
    /// Dynamic-instruction position the worker starts at.
    start: u64,
    measure_head: bool,
    /// `(stratum, window checkpoint position)` pairs to measure, ascending.
    windows: Vec<(u64, u64)>,
    /// Strata whose shadow features this segment reports: `[first, last)`.
    strata: (u64, u64),
    /// Functional end of the segment (exclusive).
    seg_end: u64,
}

/// What one segment worker hands back to the merge.
struct SegmentOut {
    head: Option<IntervalStat>,
    /// Shadow features over `[0, grid_start)` (segment 0, when snapped).
    head_feat: Option<Features>,
    /// `(stratum, window, window features)`, in program order.
    windows: Vec<(u64, IntervalStat, Option<Features>)>,
    /// Per-stratum shadow features for every stratum the segment owns.
    strata_feats: Vec<(u64, Option<Features>)>,
    /// Per-window pipeline traces in program order (head window first),
    /// captured only when `MachineConfig::trace` is on. The merge rebases
    /// and concatenates them segment by segment.
    traces: Vec<Box<PipelineTrace>>,
    detailed_insts: u64,
    error: Option<ExecError>,
}

/// Functionally advances `cpu` to dynamic instruction `until` (or `halt`)
/// over predecoded blocks, feeding the shadow profile every instruction and
/// the warming hooks every instruction at or past `warm_from`.
#[allow(clippy::too_many_arguments)]
fn fast_forward(
    cpu: &mut Cpu,
    dp: &mut DecodedProgram<'_>,
    cur: &mut BlockCursor,
    warm: &mut WarmState,
    warmer: &mut Warmer,
    shadow: &mut Shadow,
    bounds: &mut Boundaries,
    until: u64,
    warm_from: u64,
) -> Result<(), ExecError> {
    while !cpu.halted() && cpu.executed() < until {
        let pre = cpu.executed();
        bounds.cross(pre, &shadow.cum);
        let Some(d) = cpu.step_decoded(dp, cur)? else {
            break;
        };
        shadow.observe(&d);
        if pre >= warm_from {
            warmer.observe(&d, warm);
        }
    }
    Ok(())
}

/// Runs one segment: restore (or start fresh), measure the head stratum if
/// assigned, then alternate warming fast-forward and detailed windows over
/// the segment's strata, closing with a functional run to the segment end
/// so every owned stratum's shadow features are snapped.
///
/// # Errors
///
/// [`SampleError::BadCheckpoint`] when the segment's serialized phase-1
/// checkpoint fails to deserialize — the caller retries once, then takes
/// the exact-replay fallback for just this segment.
fn run_segment(
    program: &Program,
    cfg: &MachineConfig,
    sc: &SampleConfig,
    period: u64,
    base_mem: &Memory,
    total: u64,
    job: &SegmentJob,
) -> Result<SegmentOut, SampleError> {
    let grid_start = sc.head;
    let mut cpu = match &job.ck {
        Some(bytes) => {
            // The chaos copy exists only while a spec is armed or recording
            // is on; the production path deserializes the shared bytes
            // directly.
            let parsed = if reno_chaos::enabled() {
                let mut poisoned = bytes.clone();
                reno_chaos::failpoint_bytes!(FP_SEGMENT_RESTORE, job.index, &mut poisoned);
                Checkpoint::from_bytes(&poisoned)
            } else {
                Checkpoint::from_bytes(bytes)
            };
            parsed
                .map_err(|e| SampleError::BadCheckpoint(format!("segment {}: {e}", job.index)))?
                .restore_with_base(base_mem)
        }
        None => Cpu::new(program),
    };
    debug_assert_eq!(cpu.executed(), job.start);
    let mut dp = DecodedProgram::new(program);
    let mut cur = BlockCursor::new();
    let mut warm = WarmState::cold(cfg);
    let mut warmer = Warmer::new(cfg);
    let mut shadow = Shadow::new(cfg);
    let mut bounds = Boundaries::new(grid_start + job.strata.0 * period, period);
    let mut out = SegmentOut {
        head: None,
        head_feat: None,
        windows: Vec::with_capacity(job.windows.len()),
        strata_feats: Vec::new(),
        traces: Vec::new(),
        detailed_insts: 0,
        error: None,
    };
    // Instructions below this index were already warmed by a detailed
    // interval (which trains the same structures more precisely).
    let mut warmed_until = job.start;

    // Head stratum: one detailed window over the program start, cold
    // structures and pipeline fill included — exactly what the full run
    // experiences there.
    if job.measure_head {
        reno_chaos::failpoint!(FP_MEASURE_WINDOW, job.index);
        let budget = (sc.head + DRAIN_PAD).min(sc.max_insts);
        let end = sc.head.min(budget);
        let sim = Simulator::from_cpu(program, cfg.clone(), Cpu::new(program), budget)
            .with_warm_state(warm)
            .with_measure_window(0, end);
        let (r, trained) = sim.run_with_state(INTERVAL_MAX_CYCLES);
        warm = trained;
        warm.mem.reset_timing();
        if let Some((s, e)) = r.measured() {
            if e.retired > s.retired {
                out.head = Some(IntervalStat::from_marks(0, 0, &s, &e));
            }
        }
        if let Some(t) = r.trace {
            out.traces.push(t);
        }
        out.detailed_insts += r.retired;
        warmed_until = r.retired;
    }

    for &(s, pos) in &job.windows {
        reno_chaos::failpoint!(FP_WARM_REPLAY, job.index);
        if let Err(e) = fast_forward(
            &mut cpu,
            &mut dp,
            &mut cur,
            &mut warm,
            &mut warmer,
            &mut shadow,
            &mut bounds,
            pos,
            warmed_until,
        ) {
            out.error = Some(e);
            return Ok(out);
        }
        debug_assert_eq!(cpu.executed(), pos, "planner guarantees pos < total");

        // Detailed window: warmup + measure + drain pad, clipped to the
        // instruction cap, run from a clone of the live machine.
        reno_chaos::failpoint!(FP_MEASURE_WINDOW, job.index);
        let budget = (sc.detailed_per_period() + DRAIN_PAD).min(sc.max_insts - pos);
        let end = sc.detailed_per_period().min(budget);
        let start = sc.warmup.min(end);
        warm.mem.reset_timing();
        warm.mem.reset_stats();
        warm.frontend.reset_stats();
        let sim = Simulator::from_cpu(program, cfg.clone(), cpu.clone(), budget)
            .with_warm_state(warm)
            .with_measure_window(start, end);
        let (r, trained) = sim.run_with_state(INTERVAL_MAX_CYCLES);
        warm = trained;
        warm.mem.reset_timing();
        if let Some((ms, me)) = r.measured() {
            if me.retired > ms.retired {
                // Snapshot the shadow counters at the window's exact edges
                // when the functional pass reaches them.
                bounds.insert(pos + ms.retired);
                bounds.insert(pos + me.retired);
                out.windows.push((
                    s,
                    IntervalStat::from_marks(pos + ms.retired, s, &ms, &me),
                    None,
                ));
            }
        }
        if let Some(t) = r.trace {
            out.traces.push(t);
        }
        out.detailed_insts += r.retired;
        warmed_until = pos + r.retired;
    }

    // Close the segment functionally (no warming needed: nothing detailed
    // runs past this point in this segment) and take the final boundary
    // snapshot.
    if let Err(e) = fast_forward(
        &mut cpu,
        &mut dp,
        &mut cur,
        &mut warm,
        &mut warmer,
        &mut shadow,
        &mut bounds,
        job.seg_end,
        u64::MAX,
    ) {
        out.error = Some(e);
        return Ok(out);
    }
    bounds.cross(cpu.executed(), &shadow.cum);

    // Extract per-range shadow features. Cumulative counts are relative to
    // the segment head, so only within-segment deltas are taken.
    let final_cum = shadow.cum;
    let feat = |a: u64, b: u64| -> Option<Features> {
        let fa = bounds.at(a, total, &final_cum)?;
        let fb = bounds.at(b, total, &final_cum)?;
        Some(fb.minus(&fa))
    };
    for (s, iv, f) in &mut out.windows {
        let _ = s;
        *f = feat(iv.start_inst, iv.start_inst + iv.insts);
    }
    out.strata_feats = (job.strata.0..job.strata.1)
        .map(|s| {
            let s0 = grid_start + s * period;
            let s1 = (s0 + period).min(total);
            (s, feat(s0, s1))
        })
        .collect();
    if job.index == 0 && grid_start > 0 {
        out.head_feat = feat(0, grid_start.min(total));
    }
    Ok(out)
}

/// Deterministic exact-replay fallback for one failed segment: re-simulate
/// the segment's covered instruction range `[cover0, cover1)` in **full
/// detail** from the latest phase-1 checkpoint that still deserializes
/// (walking back past corrupt ones, down to a fresh machine), and charge
/// those cycles exactly instead of extrapolating. Runs serially on the
/// caller's thread and touches no failpoint, so a sticky injected fault
/// cannot chase it — the same failure pattern yields the same bytes at any
/// `RENO_THREADS`.
fn exact_segment_fallback(
    program: &Program,
    cfg: &MachineConfig,
    sc: &SampleConfig,
    period: u64,
    base_mem: &Memory,
    pass: &CheckpointPass,
    job: &SegmentJob,
) -> (SegmentOut, ExactSegment) {
    let grid_start = sc.head;
    let cover0 = if job.index == 0 {
        0
    } else {
        grid_start + job.strata.0 * period
    };
    let cover1 = job.seg_end;

    // Latest restorable checkpoint at or before the segment head. The
    // segment's own checkpoint is pass.checkpoints[job.index - 1]; walk
    // back from there until one parses cleanly.
    let mut cpu = Cpu::new(program);
    if job.index > 0 {
        for i in (0..job.index as usize).rev() {
            if let Ok(ck) = Checkpoint::from_bytes(&pass.checkpoints[i]) {
                cpu = ck.restore_with_base(base_mem);
                break;
            }
        }
    }
    let start = cpu.executed();
    debug_assert!(start <= cover0);

    let budget = (cover1 - start + DRAIN_PAD).min(sc.max_insts.saturating_sub(start));
    let r = Simulator::from_cpu(program, cfg.clone(), cpu, budget)
        .with_measure_window(cover0 - start, cover1 - start)
        .run(u64::MAX);
    let (insts, cycles) = match r.measured() {
        Some((s, e)) => (e.retired - s.retired, e.cycles - s.cycles),
        // The start mark cannot fire past the budget; an empty window only
        // means the program ended inside the drain pad — charge nothing.
        None => (0, 0),
    };
    let out = SegmentOut {
        head: None,
        head_feat: None,
        windows: Vec::new(),
        strata_feats: Vec::new(),
        traces: Vec::new(),
        detailed_insts: r.retired,
        error: None,
    };
    (
        out,
        ExactSegment {
            segment: job.index,
            // The window clips at halt/fuel, so the range truly covered is
            // exactly the instructions that retired inside it.
            range: (cover0, cover0 + insts),
            insts,
            cycles,
        },
    )
}

#[inline]
fn dot4(a: &[f64; 4], b: &[f64; 4]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3]
}

/// Least-squares fit of `y ≈ β · x` via ridge-stabilized normal equations
/// (4×4 Gaussian elimination with partial pivoting).
fn ls_fit(xs: &[[f64; 4]], ys: &[f64]) -> Option<[f64; 4]> {
    let mut a = [[0.0f64; 4]; 4];
    let mut b = [0.0f64; 4];
    for (x, &y) in xs.iter().zip(ys) {
        for i in 0..4 {
            for j in 0..4 {
                a[i][j] += x[i] * x[j];
            }
            b[i] += x[i] * y;
        }
    }
    let ridge = 1e-9 * (a[0][0] + a[1][1] + a[2][2] + a[3][3]).max(1.0);
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += ridge;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..4 {
        let piv = (col..4).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[piv][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for row in col + 1..4 {
            let f = a[row][col] / a[col][col];
            for k in col..4 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut beta = [0.0f64; 4];
    for col in (0..4).rev() {
        let mut v = b[col];
        for k in col + 1..4 {
            v -= a[col][k] * beta[k];
        }
        beta[col] = v / a[col][col];
    }
    Some(beta)
}

/// Minimum R² on the measured windows for the cycle model to be trusted
/// with extrapolating unmeasured strata.
const MODEL_MIN_R2: f64 = 0.85;
/// Minimum measured windows before fitting a 4-parameter model.
const MODEL_MIN_WINDOWS: usize = 8;

/// The merged per-stratum / per-window shadow features of one sampled run.
struct FeatureTable {
    /// Features of each measured window, index-aligned with
    /// `SampledResult::intervals`.
    windows: Vec<Option<Features>>,
    /// Features of every stratum `0..strata_total`, indexed by stratum.
    strata: Vec<Option<Features>>,
    /// Features over `[0, grid_start)`.
    head: Option<Features>,
}

/// Model-assisted estimation: fit `cycles ≈ β · (insts, L2-served,
/// mem-served, mispredicts)` on the measured windows against the shadow
/// profile's exact per-range features, then estimate every stratum from its
/// own features — measured strata keep their measurement as a local
/// multiplicative correction, unmeasured strata use the model outright.
/// The per-segment profiles jointly cover every instruction, so phase
/// structure that never lined up with a window still lands in the estimate
/// through its features.
fn model_assist(
    sc: &SampleConfig,
    period: u64,
    result: &mut SampledResult,
    ft: &FeatureTable,
) -> Result<(), SampleError> {
    if result.intervals.len() < MODEL_MIN_WINDOWS || result.total_insts == 0 || period == 0 {
        return Ok(());
    }
    let total = result.total_insts;
    let mut xs: Vec<[f64; 4]> = Vec::with_capacity(result.intervals.len());
    let mut ys: Vec<f64> = Vec::with_capacity(result.intervals.len());
    for (iv, f) in result.intervals.iter().zip(&ft.windows) {
        let Some(f) = f else { return Ok(()) };
        xs.push(f.vec());
        ys.push(iv.cycles as f64);
    }
    let Some(beta) = ls_fit(&xs, &ys) else {
        return Ok(());
    };
    if !beta.iter().all(|b| b.is_finite()) {
        return Err(SampleError::ModelDegenerate("non-finite model fit"));
    }
    // Strata (and a missing head) already covered exactly by the replay
    // fallback are charged their measured cycles at the end instead of a
    // model extrapolation.
    let exact_covers = |a: u64, b: u64| {
        result
            .exact_segments
            .iter()
            .any(|e| e.range.0 <= a && b <= e.range.1)
    };

    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let sst: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
    let ssr: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| {
            let e = y - dot4(&beta, x);
            e * e
        })
        .sum();
    let r2 = if sst <= f64::EPSILON {
        1.0
    } else {
        1.0 - ssr / sst
    };
    result.model_r2 = Some(r2);
    if r2 < MODEL_MIN_R2 {
        return Ok(());
    }

    let steady = result.steady_cpi();
    let by_stratum: std::collections::HashMap<u64, usize> = result
        .intervals
        .iter()
        .enumerate()
        .map(|(k, iv)| (iv.stratum, k))
        .collect();
    let mut cycles = 0.0f64;
    // The head window covers [0, grid_start) exactly; without one, the
    // region is extrapolated through the model like any other.
    let grid_start = sc.head.min(total);
    match &result.head {
        Some(h) => cycles += h.cycles as f64,
        None if grid_start > 0 && exact_covers(0, grid_start) => {}
        None => {
            if grid_start > 0 {
                let Some(f) = ft.head else { return Ok(()) };
                let pred = dot4(&beta, &f.vec());
                cycles += if pred > 0.0 {
                    pred
                } else {
                    steady * f.insts as f64
                };
            }
        }
    }
    let strata = total.saturating_sub(grid_start).div_ceil(period.max(1));
    for s in 0..strata {
        let s0 = grid_start + s * period;
        let s1 = (s0 + period).min(total);
        if exact_covers(s0, s1) {
            continue;
        }
        let Some(Some(f)) = ft.strata.get(s as usize) else {
            return Ok(());
        };
        let pred = dot4(&beta, &f.vec());
        let est = match by_stratum.get(&s) {
            Some(&k) => {
                let iv = &result.intervals[k];
                let Some(fw) = ft.windows[k] else {
                    return Ok(());
                };
                let predw = dot4(&beta, &fw.vec());
                if pred > 0.0 && predw > 1e-6 {
                    // Local multiplicative correction: how the measured
                    // window actually performed vs. what the model said.
                    pred * (iv.cycles as f64 / predw).clamp(0.5, 2.0)
                } else {
                    iv.cpi() * (s1 - s0) as f64
                }
            }
            None if pred > 0.0 => pred,
            None => steady * (s1 - s0) as f64,
        };
        cycles += est;
    }
    cycles += result
        .exact_segments
        .iter()
        .map(|e| e.cycles as f64)
        .sum::<f64>();
    if !cycles.is_finite() {
        return Err(SampleError::ModelDegenerate("non-finite model estimate"));
    }
    result.model_cycles = Some(cycles);
    Ok(())
}

/// Relative shift in the beyond-L1 service mix (L2- and memory-served
/// access rates) between the strata the model was fitted on (measured) and
/// the strata it extrapolates (unmeasured). A large shift means the
/// unmeasured part of the program behaves unlike anything a window saw —
/// exactly the regime where functional warming biases can hide — so the
/// auto ladder treats it as a reason to densify or fall back.
fn feature_drift(result: &SampledResult, ft: &FeatureTable) -> Option<f64> {
    let measured: std::collections::HashSet<u64> =
        result.intervals.iter().map(|iv| iv.stratum).collect();
    let mut m = Features::default();
    let mut u = Features::default();
    let mut unmeasured_any = false;
    for (s, f) in ft.strata.iter().enumerate() {
        let f = (*f)?;
        if measured.contains(&(s as u64)) {
            m.add(&f);
        } else {
            unmeasured_any = true;
            u.add(&f);
        }
    }
    if !unmeasured_any || m.insts == 0 || u.insts == 0 {
        return None;
    }
    let rate = |f: &Features, k: u64| k as f64 / f.insts as f64;
    let mut drift = 0.0f64;
    for (rm, ru) in [
        (rate(&m, m.l2), rate(&u, u.l2)),
        (rate(&m, m.mem), rate(&u, u.mem)),
    ] {
        // Normalize by the larger rate, floored so near-zero traffic on
        // both sides (e.g. an L1-resident program) cannot manufacture a
        // huge relative drift out of noise.
        let denom = rm.max(ru).max(2e-3);
        drift = drift.max((ru - rm).abs() / denom);
    }
    Some(drift)
}

/// Runs `program` under `cfg` with checkpointed fast-forward and sampled
/// detailed measurement (see the crate docs for the phase structure and the
/// estimation methodology).
///
/// The run is **time-parallel**: a cheap serial functional pass (predecoded
/// blocks, no warming) takes one dirty-page checkpoint per segment (a fixed
/// number of sampling periods derived from the config), then the
/// checkpoint-delimited segments fan across the [`reno_par::par_map`]
/// worker pool. Each worker restores its checkpoint, rebuilds warm state
/// (functional warming from the segment head, with a warm margin of at
/// least an L2-refill horizon before its first stratum, plus the usual
/// per-window detailed warmup), measures its windows, and profiles its
/// strata; the
/// merged window set feeds one least-squares model fit. Segmentation never
/// depends on the worker count, so the result is **byte-identical at any
/// `RENO_THREADS`**.
///
/// Architectural results ([`SampledResult::checksum`],
/// [`SampledResult::digest`], [`SampledResult::total_insts`]) are exact —
/// the whole program executes functionally. Timing statistics are estimates
/// extrapolated from the measured intervals.
///
/// # Panics
///
/// Panics if `sc` is inconsistent (see [`SampleConfig::new`]).
pub fn run_sampled(program: &Program, cfg: MachineConfig, sc: &SampleConfig) -> SampledResult {
    sc.validate();
    // Phase 1 runs under the same isolation discipline as the segment
    // workers: a panic is caught, retried once, and a persistent failure
    // degrades the whole run to the deterministic full-detail fallback —
    // this function never panics on a fault, only on a misused config.
    let (pass, healed) = match run_caught(|| functional_pass(program, sc, sc.period)) {
        Ok(p) => (Ok(p), None),
        Err(p0) => (
            run_caught(|| functional_pass(program, sc, sc.period)).map_err(|_| p0),
            Some(FaultRecovery::Retried),
        ),
    };
    let (error, pass) = match pass {
        Ok(pass) => {
            match run_sampled_with_pass(program, cfg.clone(), sc, &pass) {
                Ok(mut r) => {
                    if let Some(recovery) = healed {
                        r.segment_faults.insert(
                            0,
                            SegmentFault {
                                segment: u64::MAX,
                                error: SampleError::SegmentPanic(
                                    "phase-1 pass panicked; retry succeeded".to_string(),
                                ),
                                recovery,
                            },
                        );
                    }
                    return r;
                }
                // A self-computed pass only misfits its own shape when its
                // serialized checkpoints were corrupted (e.g. an injected
                // fault at `sample:pass-checkpoint`).
                Err(e) => (SampleError::BadCheckpoint(e.to_string()), Some(pass)),
            }
        }
        Err(p) => (SampleError::SegmentPanic(p.message), None),
    };
    eprintln!("reno-sample: phase-1 pass failed ({error}); exact full-detail fallback");
    let max = pass.as_ref().map_or(sc.max_insts, |p| p.total_insts);
    let mut r = full_detail(program, cfg, max.min(sc.max_insts));
    r.segment_faults.push(SegmentFault {
        segment: u64::MAX,
        error,
        recovery: FaultRecovery::ExactReplay,
    });
    r
}

/// Like [`run_sampled`], but reusing a precomputed (possibly
/// store-cached) phase-1 [`CheckpointPass`] instead of re-executing the
/// serial functional pass — the amortization path for design-space sweeps,
/// where one architectural pass per (program, sampling shape) serves every
/// machine config in the grid.
///
/// The pass is validated before any worker runs: every segment the
/// segmentation derives must have a checkpoint at exactly the expected
/// dynamic-instruction position (checked via the cheap
/// [`Checkpoint::peek_executed`] header probe; full validation still
/// happens when each worker deserializes its checkpoint). A pass taken for
/// a different program, scale, or sampling shape is rejected as
/// [`PassError::Mismatch`], never silently mis-sampled.
///
/// # Errors
///
/// See [`PassError`].
///
/// # Panics
///
/// Panics if `sc` is inconsistent (see [`SampleConfig::new`]).
pub fn run_sampled_with_pass(
    program: &Program,
    cfg: MachineConfig,
    sc: &SampleConfig,
    pass: &CheckpointPass,
) -> Result<SampledResult, PassError> {
    sc.validate();
    let period = sc.period;
    let total = pass.total_insts;
    let grid_start = sc.head;
    let measure_head = sc.head > 0 && sc.max_insts > 0;

    // Plan the measured strata (deterministic: positions come from the
    // jitter hash, the cap from the config).
    let strata_total = if total > grid_start {
        (total - grid_start).div_ceil(period.max(1))
    } else {
        0
    };
    let mut planned: Vec<(u64, u64)> = Vec::new();
    for s in 0..strata_total {
        if sc.max_intervals.is_some_and(|m| planned.len() >= m) {
            break;
        }
        let pos = stratum_position(sc, grid_start, period, s).min(sc.max_insts);
        if pos >= total {
            break;
        }
        planned.push((s, pos));
    }

    // Carve segments: `seg_k` strata each, the last one absorbing the
    // tail fragment. Every segment runs (features are needed for all
    // strata), whether or not it measures a window.
    let (seg_k, seg_m) = segment_shape(period);
    let seg_count = strata_total.div_ceil(seg_k).max(u64::from(measure_head));
    let mut jobs: Vec<SegmentJob> = Vec::with_capacity(seg_count as usize);
    for j in 0..seg_count {
        let s_first = j * seg_k;
        let s_last = ((j + 1) * seg_k).min(strata_total);
        let seg_end = if s_last >= strata_total {
            total
        } else {
            grid_start + s_last * period
        };
        let (ck, start) = if j == 0 {
            (None, 0)
        } else {
            let expected = segment_checkpoint_position(grid_start, period, seg_k, seg_m, j);
            let bytes = pass
                .checkpoints
                .get(j as usize - 1)
                .ok_or(PassError::Mismatch {
                    segment: j,
                    expected,
                    got: None,
                })?;
            let got = Checkpoint::peek_executed(bytes);
            if got != Some(expected) {
                return Err(PassError::Mismatch {
                    segment: j,
                    expected,
                    got,
                });
            }
            (Some(bytes.clone()), expected)
        };
        jobs.push(SegmentJob {
            index: j,
            ck,
            start,
            measure_head: measure_head && j == 0,
            windows: planned
                .iter()
                .filter(|&&(s, _)| s >= s_first && s < s_last)
                .copied()
                .collect(),
            strata: (s_first, s_last),
            seg_end,
        });
    }

    let base_mem = Cpu::new(program).mem().clone();
    // Self-healing fan-out: panics are caught per job; a failed segment is
    // retried once serially (in job order, on this thread — a transient
    // fault reproduces the healthy bytes exactly), and a segment that fails
    // its retry too is replaced by the exact-replay fallback. Every path is
    // schedule-independent, so the result stays byte-identical at any
    // `RENO_THREADS` for the same failure pattern.
    let flatten = |r: Result<Result<SegmentOut, SampleError>, JobPanic>| match r {
        Ok(inner) => inner,
        Err(p) => Err(SampleError::SegmentPanic(p.message)),
    };
    let first = try_par_map(&jobs, |job| {
        run_segment(program, &cfg, sc, period, &base_mem, total, job)
    });
    let mut segment_faults: Vec<SegmentFault> = Vec::new();
    let mut exact_segments: Vec<ExactSegment> = Vec::new();
    let mut outs: Vec<SegmentOut> = Vec::with_capacity(jobs.len());
    for (job, r) in jobs.iter().zip(first) {
        match flatten(r) {
            Ok(out) => outs.push(out),
            Err(error) => {
                let retried = flatten(run_caught(|| {
                    run_segment(program, &cfg, sc, period, &base_mem, total, job)
                }));
                match retried {
                    Ok(out) => {
                        segment_faults.push(SegmentFault {
                            segment: job.index,
                            error,
                            recovery: FaultRecovery::Retried,
                        });
                        outs.push(out);
                    }
                    Err(_persistent) => {
                        let (out, exact) =
                            exact_segment_fallback(program, &cfg, sc, period, &base_mem, pass, job);
                        segment_faults.push(SegmentFault {
                            segment: job.index,
                            error,
                            recovery: FaultRecovery::ExactReplay,
                        });
                        exact_segments.push(exact);
                        outs.push(out);
                    }
                }
            }
        }
    }

    // Merge, in segment order (== program order).
    let mut head = None;
    let mut ft = FeatureTable {
        windows: Vec::new(),
        strata: vec![None; strata_total as usize],
        head: None,
    };
    let mut intervals: Vec<IntervalStat> = Vec::new();
    let mut detailed_insts = 0u64;
    let mut error = pass.error.clone();
    // Merged trace: segment order == program order (par_map preserves job
    // order), each window rebased onto the end of the previous one, so the
    // bytes are identical at any RENO_THREADS.
    let mut trace: Option<Box<PipelineTrace>> = cfg.trace.then(Box::default);
    for out in outs {
        if out.head.is_some() {
            head = out.head;
        }
        if out.head_feat.is_some() {
            ft.head = out.head_feat;
        }
        for (_, iv, f) in out.windows {
            intervals.push(iv);
            ft.windows.push(f);
        }
        for (s, f) in out.strata_feats {
            ft.strata[s as usize] = f;
        }
        if let Some(t) = &mut trace {
            for seg_trace in &out.traces {
                t.append_rebased(seg_trace);
            }
        }
        detailed_insts += out.detailed_insts;
        if error.is_none() {
            error = out.error;
        }
    }
    debug_assert!(intervals
        .windows(2)
        .all(|w| w[0].start_inst < w[1].start_inst));

    let mut result = SampledResult {
        head,
        intervals,
        grid_start: sc.head,
        period,
        total_insts: total,
        halted: pass.halted,
        checksum: pass.checksum,
        digest: pass.digest,
        detailed_insts,
        error,
        model_cycles: None,
        model_r2: None,
        feature_drift: None,
        trace,
        segment_faults,
        exact_segments,
    };
    if let Err(error) = model_assist(sc, period, &mut result, &ft) {
        result.model_cycles = None;
        result.segment_faults.push(SegmentFault {
            segment: u64::MAX,
            error,
            recovery: FaultRecovery::Disabled,
        });
    }
    result.feature_drift = feature_drift(&result, &ft);
    Ok(result)
}

/// Runs `program` fully detailed and reports it as a degenerate
/// [`SampledResult`]: one "head" window covering the entire run, estimate
/// == measurement. The honest escape hatch of [`run_sampled_auto`] for
/// programs sampling cannot serve.
fn full_detail(program: &Program, cfg: MachineConfig, max_insts: u64) -> SampledResult {
    let r = Simulator::with_fuel(program, cfg, max_insts)
        .with_measure_window(0, u64::MAX)
        .run(u64::MAX);
    // The start mark fires at cycle 0, so a missing window is a simulator
    // contract violation — record it as a fault on an estimate-less result
    // instead of panicking.
    let (head, fault) = match r.measured() {
        Some((s, e)) => (Some(IntervalStat::from_marks(0, 0, &s, &e)), None),
        None => (
            None,
            Some(SegmentFault {
                segment: u64::MAX,
                error: SampleError::WindowInvalid("full-detail run produced no start mark"),
                recovery: FaultRecovery::Disabled,
            }),
        ),
    };
    SampledResult {
        head,
        intervals: Vec::new(),
        grid_start: r.retired,
        period: 1,
        total_insts: r.retired,
        halted: r.halted,
        checksum: r.checksum,
        digest: r.digest,
        detailed_insts: r.retired,
        error: None,
        model_cycles: None,
        model_r2: None,
        feature_drift: None,
        trace: r.trace,
        segment_faults: fault.into_iter().collect(),
        exact_segments: Vec::new(),
    }
}

/// Maximum tolerated [`SampledResult::feature_drift`] before a rung's
/// estimate is considered out-of-distribution and the ladder escalates.
const DRIFT_LIMIT: f64 = 0.5;

/// Ground truth for rare expensive pipeline events, from the second half
/// of the head region measured exactly from cold: `(squashes, insts)`.
/// The *first* half is startup (gzip/parser/vpr squash dozens of times
/// while initializing, then never again — those costs are already charged
/// exactly through the head stratum); rates that persist into the second
/// half belong to the steady state the windows claim to represent.
type RareEventAnchor = Option<(u64, u64)>;

fn rare_event_anchor(program: &Program, cfg: &MachineConfig, head: u64) -> RareEventAnchor {
    let r = Simulator::with_fuel(program, cfg.clone(), head + DRAIN_PAD)
        .with_measure_window(head / 2, head)
        .run(INTERVAL_MAX_CYCLES);
    let (s, e) = r.measured()?;
    (e.retired > s.retired).then(|| (e.stats.squashed - s.stats.squashed, e.retired - s.retired))
}

/// Rare-event blindness: squashes (memory-ordering violations and
/// misintegrations) cost tens of cycles each, and the shadow profile
/// cannot see them. vortex at `Scale::Large` loses ~6% of its cycles to
/// squashes whose rate a 768-instruction window almost never samples —
/// every window measures a clean, uniformly optimistic CPI, and the
/// dispersion/model gates are all green. The head's second half
/// establishes the steady squash rate exactly; if the windows should have
/// seen a statistically meaningful number of squashes at that rate but saw
/// almost none, the window population is blind to that cost. Escalate.
fn windows_blind_to_rare_events(r: &SampledResult, anchor: RareEventAnchor) -> bool {
    let Some((a_squash, a_insts)) = anchor else {
        return false;
    };
    if a_insts == 0 || a_squash == 0 {
        return false;
    }
    let win_insts: u64 = r.intervals.iter().map(|i| i.insts).sum();
    let win_squash: u64 = r.intervals.iter().map(|i| i.stats.squashed).sum();
    let expected = a_squash as f64 / a_insts as f64 * win_insts as f64;
    // Poisson-style rule: expecting >= 5 events, observing under a quarter
    // of them, is blindness, not luck (P[N <= E/4 | E >= 5] < ~2%).
    expected >= 5.0 && (win_squash as f64) < expected / 4.0
}

/// The production entry point: sampled simulation with an accuracy
/// escalation ladder.
///
/// * **Round 0** — sparse sampling (32k-instruction periods, 1k detailed
///   warmup per window). Accepted when enough windows were measured, the
///   shadow-profile cycle model fit them well, their dispersion
///   (95% bound) is moderate, and the shadow profile shows no large drift
///   in the beyond-L1 service mix between the fitted and unmeasured strata
///   — the common case for phase-stable programs, at a few percent detailed
///   cost.
/// * **Round 1** — dense sampling (12k periods) with a 2k warmup. The long
///   warmup matters: window restarts lose long-range microarchitectural
///   state (RENO's integration table most of all), and bursty programs
///   need both the density and the deeper refill. Accepted under the same
///   window-count/model/drift gates with a tightened R² requirement.
/// * **Fallback** — full detailed simulation. Programs too short or too
///   irregular to sample (every window gate failed) are simply measured;
///   sampling is a bargain for long programs, not a mandate for short ones.
///
/// The gates only ever consult a cheap functional length probe and the
/// runs' own diagnostics (window count, model R², window dispersion,
/// feature drift), so the choice is deterministic.
pub fn run_sampled_auto(program: &Program, cfg: MachineConfig, max_insts: u64) -> SampledResult {
    const HEAD: u64 = 16384;
    const MIN_WINDOWS: u64 = 12;
    /// Detailed warmup per window: deep enough to rebuild the long-range
    /// state a restart loses (RENO's integration table above all).
    const WARMUP: u64 = 2048;
    const INTERVAL: u64 = 768;

    // Length probe: a bare functional pass over predecoded blocks (several
    // times cheaper than even the warming fast-forward) so rungs that
    // cannot field enough windows are skipped instead of run and discarded.
    let total = {
        let mut cpu = Cpu::new(program);
        let mut dp = DecodedProgram::new(program);
        match cpu.run_decoded(&mut dp, max_insts) {
            Ok(r) => r.executed,
            Err(_) => cpu.executed(),
        }
    };

    let p0 = (total / 48).max(32768);
    let p1 = 12288u64;

    // Ground-truth rare-event rates, measured once and shared by both
    // rungs' gates (skipped when no rung can field enough windows anyway —
    // `p1` is the denser rung, so its window guard is the weaker one).
    let anchor = if total.saturating_sub(HEAD) / p1 >= MIN_WINDOWS {
        rare_event_anchor(program, &cfg, HEAD)
    } else {
        None
    };

    let diag = |r: &SampledResult| {
        (
            r.intervals.len() as u64,
            r.model_r2
                .filter(|_| r.model_cycles.is_some())
                .unwrap_or(-1.0),
            r.cpi_ci95_rel_pct(),
            r.feature_drift.map_or(true, |d| d <= DRIFT_LIMIT)
                && !windows_blind_to_rare_events(r, anchor),
        )
    };

    // Round 0: sparse (~48 windows on long programs). Accept on a tight
    // dispersion bound alone, or on a trusted model with moderate
    // dispersion — the better the model fits, the more window dispersion it
    // has already explained away. Either way, the unmeasured strata must
    // look like the measured ones (the drift gate) and the windows must
    // reproduce the anchored rare-event rates (the blindness gate).
    if total.saturating_sub(HEAD) / p0 >= MIN_WINDOWS {
        let sc0 = SampleConfig::new(WARMUP, INTERVAL, p0)
            .with_head(HEAD)
            .with_max_insts(max_insts);
        let r0 = run_sampled(program, cfg.clone(), &sc0);
        let (iv, r2, ci, profile_ok) = diag(&r0);
        if iv >= MIN_WINDOWS
            && profile_ok
            && (ci <= 1.0
                || (r2 >= 0.90 && ci <= 4.5)
                || (r2 >= 0.95 && ci <= 6.5)
                || (r2 >= 0.99 && ci <= 8.0))
        {
            return r0;
        }
    }

    // Round 1: dense. A trusted model is mandatory here — programs that
    // reach this rung have dispersion only a model can tame.
    if total.saturating_sub(HEAD) / p1 >= MIN_WINDOWS {
        let sc1 = SampleConfig::new(WARMUP, INTERVAL, p1)
            .with_head(HEAD)
            .with_max_insts(max_insts);
        let r1 = run_sampled(program, cfg.clone(), &sc1);
        let (iv, r2, ci, profile_ok) = diag(&r1);
        if iv >= MIN_WINDOWS
            && profile_ok
            && ((r2 >= 0.93 && ci <= 8.0) || (r2 >= 0.99 && ci <= 12.0))
        {
            return r1;
        }
    }

    full_detail(program, cfg, max_insts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reno_core::RenoConfig;
    use reno_isa::{Asm, Reg};

    /// A mixed kernel (loads, stores, folds, a data-dependent walk) whose
    /// working set is `8 * (mask + 1)` bytes, so tests can dial the cold-start
    /// cost independently of the run length.
    fn kernel_with(iters: i64, mask: i16) -> Program {
        let mut a = Asm::new();
        let buf = a.zeros("buf", 8 * (mask as usize + 1));
        a.li(Reg::S0, buf as i64);
        a.li(Reg::T0, iters);
        a.li(Reg::V0, 0);
        a.label("outer");
        a.andi(Reg::T1, Reg::T0, mask);
        a.slli(Reg::T1, Reg::T1, 3);
        a.add(Reg::T1, Reg::T1, Reg::S0);
        a.ld(Reg::T2, Reg::T1, 0);
        a.add(Reg::V0, Reg::V0, Reg::T2);
        a.st(Reg::V0, Reg::T1, 0);
        a.addi(Reg::V0, Reg::V0, 5);
        a.addi(Reg::V0, Reg::V0, -3);
        a.xor(Reg::V0, Reg::V0, Reg::T0);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "outer");
        a.out(Reg::V0);
        a.halt();
        a.assemble().unwrap()
    }

    fn kernel(iters: i64) -> Program {
        kernel_with(iters, 255)
    }

    fn cfg() -> MachineConfig {
        MachineConfig::four_wide(RenoConfig::reno())
    }

    #[test]
    fn architectural_results_are_exact() {
        let p = kernel(900);
        let (ref_cpu, ref_run) = reno_func::run_to_completion(&p, 1 << 22).unwrap();
        let s = run_sampled(&p, cfg(), &SampleConfig::new(64, 128, 1024));
        assert!(s.halted);
        assert!(s.error.is_none());
        assert_eq!(s.total_insts, ref_run.executed);
        assert_eq!(s.checksum, ref_cpu.checksum());
        assert_eq!(s.digest, ref_cpu.state_digest());
        assert!(!s.intervals.is_empty());
    }

    #[test]
    fn continuous_sampling_tracks_full_run_closely() {
        // period == warmup + interval: detailed windows tile the program, so
        // the estimate must land very close to the full detailed run. The
        // small working set (256B) keeps the one-time cold-start cost — which
        // sampling deliberately leaves out of the measured windows — in the
        // noise of this short run.
        let p = kernel_with(3000, 31);
        let full = Simulator::new(&p, cfg()).run(1 << 24);
        let s = run_sampled(&p, cfg(), &SampleConfig::new(256, 768, 1024));
        let full_cpi = full.cycles as f64 / full.retired as f64;
        let err = (s.est_cpi() - full_cpi).abs() / full_cpi;
        assert!(
            err < 0.05,
            "continuous sampling drifted {:.2}% from full CPI {:.4} (est {:.4})",
            err * 100.0,
            full_cpi,
            s.est_cpi()
        );
        assert!(s.detailed_fraction() > 0.9, "windows tile the whole run");
    }

    #[test]
    fn interval_bookkeeping_is_consistent() {
        let p = kernel(1500);
        let sc = SampleConfig::new(100, 300, 2048);
        let s = run_sampled(&p, cfg(), &sc);
        for (k, i) in s.intervals.iter().enumerate() {
            // Boundaries land on retire-bundle edges, so a window may run a
            // few instructions long.
            assert!(i.insts > 0 && i.insts <= sc.interval + 8);
            assert!(i.cycles >= i.insts / 8, "4-wide bounds the IPC");
            // Interval k starts inside period k, after its warmup.
            let period_base = k as u64 * sc.period;
            assert!(
                i.start_inst >= period_base + sc.warmup && i.start_inst < period_base + sc.period,
                "interval {k} starts at {} (period base {period_base})",
                i.start_inst
            );
            assert_eq!(i.stratum, k as u64);
        }
        assert_eq!(
            s.measured_insts(),
            s.intervals.iter().map(|i| i.insts).sum()
        );
        assert!(s.detailed_insts >= s.measured_insts());
        assert!(s.detailed_fraction() < 0.5, "most of the run fast-forwards");
    }

    #[test]
    fn max_intervals_and_max_insts_cap_the_run() {
        let p = kernel(2000);
        let s = run_sampled(
            &p,
            cfg(),
            &SampleConfig::new(32, 64, 512).with_max_intervals(3),
        );
        assert_eq!(s.intervals.len(), 3);
        assert!(s.halted, "functional pass still finishes the program");

        let s = run_sampled(
            &p,
            cfg(),
            &SampleConfig::new(32, 64, 512).with_max_insts(1000),
        );
        assert!(!s.halted);
        assert_eq!(s.total_insts, 1000);
    }

    #[test]
    fn program_shorter_than_warmup_measures_nothing() {
        let mut a = Asm::new();
        a.li(Reg::T0, 1);
        a.out(Reg::T0);
        a.halt();
        let p = a.assemble().unwrap();
        let s = run_sampled(&p, cfg(), &SampleConfig::new(64, 64, 1024));
        assert!(s.halted);
        assert_eq!(s.est_cpi(), 0.0);
        assert!(s.intervals.is_empty());
        assert_eq!(s.total_insts, 3);
    }

    #[test]
    fn long_runs_span_multiple_segments() {
        // ~1.2M insts / 64k periods = 18 strata over 8-period segments =
        // 3 segments: the result must still be self-consistent (exact
        // totals, windows in every stratum, one per stratum, in order).
        let p = kernel(100_000);
        let sc = SampleConfig::new(100, 300, 65536);
        let (seg_k, _) = segment_shape(sc.period);
        let s = run_sampled(&p, cfg(), &sc);
        assert!(s.halted);
        let strata: Vec<u64> = s.intervals.iter().map(|i| i.stratum).collect();
        let want: Vec<u64> = (0..strata.len() as u64).collect();
        assert_eq!(strata, want, "one window per stratum, in order");
        assert!(
            strata.len() as u64 > 2 * seg_k,
            "the run must actually span >2 segments (got {} strata over \
             {seg_k}-period segments)",
            strata.len()
        );
    }

    #[test]
    #[should_panic(expected = "must fit inside the sampling period")]
    fn oversized_window_rejected() {
        let _ = SampleConfig::new(600, 600, 1000);
    }

    /// Two `SampledResult`s are "the same run" when every estimate-bearing
    /// field matches bit-for-bit.
    fn assert_same_run(a: &SampledResult, b: &SampledResult) {
        assert_eq!(a.total_insts, b.total_insts);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.detailed_insts, b.detailed_insts);
        assert_eq!(a.intervals.len(), b.intervals.len());
        for (x, y) in a.intervals.iter().zip(&b.intervals) {
            assert_eq!(
                (x.start_inst, x.stratum, x.insts, x.cycles),
                (y.start_inst, y.stratum, y.insts, y.cycles)
            );
        }
        assert_eq!(a.est_cpi().to_bits(), b.est_cpi().to_bits());
        assert_eq!(
            a.model_cycles.map(f64::to_bits),
            b.model_cycles.map(f64::to_bits)
        );
    }

    #[test]
    fn pass_round_trips_and_reuses_across_configs() {
        let p = kernel(100_000);
        let sc = SampleConfig::new(100, 300, 65536);
        let pass = CheckpointPass::compute(&p, &sc);
        assert!(pass.error.is_none());
        assert!(!pass.checkpoints.is_empty(), "long run spans segments");

        // Strict serialization bijection.
        let bytes = pass.to_bytes();
        let again = CheckpointPass::from_bytes(&bytes).unwrap();
        assert_eq!(pass, again);
        assert_eq!(again.to_bytes(), bytes);

        // One pass (round-tripped through bytes, as the store would hand it
        // back) serves arbitrary machine configs bit-identically to each
        // config's own self-computed pass.
        for mc in [
            MachineConfig::four_wide(RenoConfig::reno()),
            MachineConfig::four_wide(RenoConfig::baseline()).with_pregs(96),
        ] {
            let direct = run_sampled(&p, mc.clone(), &sc);
            let reused = run_sampled_with_pass(&p, mc, &sc, &again).unwrap();
            assert_same_run(&direct, &reused);
        }
    }

    #[test]
    fn foreign_pass_is_rejected_not_missampled() {
        let p = kernel(100_000);
        let sc = SampleConfig::new(100, 300, 65536);
        // A pass missing a segment's checkpoint (e.g. taken for a shorter
        // cap or a different sampling shape) must be rejected up front.
        let mut short = CheckpointPass::compute(&p, &sc);
        short.checkpoints.pop();
        let err = run_sampled_with_pass(&p, cfg(), &sc, &short).unwrap_err();
        assert!(
            matches!(err, PassError::Mismatch { got: None, .. }),
            "got {err:?}"
        );
        // A pass whose checkpoints sit at the wrong positions (here: the
        // segment order swapped) must be rejected, never mis-restored.
        let mut swapped = CheckpointPass::compute(&p, &sc);
        assert!(swapped.checkpoints.len() >= 2, "test needs two segments");
        swapped.checkpoints.swap(0, 1);
        let err = run_sampled_with_pass(&p, cfg(), &sc, &swapped).unwrap_err();
        assert!(
            matches!(err, PassError::Mismatch { got: Some(_), .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn corrupt_pass_bytes_are_rejected() {
        let p = kernel(100_000);
        let sc = SampleConfig::new(100, 300, 65536);
        let bytes = CheckpointPass::compute(&p, &sc).to_bytes();

        assert_eq!(
            CheckpointPass::from_bytes(b"garbage!").unwrap_err(),
            PassError::BadMagic
        );
        assert_eq!(
            CheckpointPass::from_bytes(b"short").unwrap_err(),
            PassError::Truncated
        );
        let mut t = bytes.clone();
        t.truncate(t.len() - 3);
        assert_eq!(
            CheckpointPass::from_bytes(&t).unwrap_err(),
            PassError::Truncated
        );
        let mut lie = bytes.clone();
        // Claim u32::MAX checkpoints: must reject before any allocation.
        lie[8 + 4 + 8 * 4..8 + 4 + 8 * 4 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            CheckpointPass::from_bytes(&lie).unwrap_err(),
            PassError::Truncated
        );
        let mut flip = bytes.clone();
        let first_ck = 8 + 4 + 8 * 4 + 4 + 4; // first embedded checkpoint's magic
        flip[first_ck] ^= 0x40;
        assert!(matches!(
            CheckpointPass::from_bytes(&flip).unwrap_err(),
            PassError::Checkpoint(_)
        ));
    }
}
