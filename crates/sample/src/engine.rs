use crate::{IntervalStat, SampledResult};
use reno_func::{Checkpoint, Cpu, DynInst, ExecError};
use reno_isa::Program;
use reno_mem::MemHierarchy;
use reno_sim::{classify_control, MachineConfig, Simulator, WarmState};
use reno_uarch::FrontEnd;

/// Extra fuel past the measure-window end so the end-boundary instruction
/// retires with the pipeline still in full flight (covers the ROB plus the
/// fetch buffer of any supported machine shape).
const DRAIN_PAD: u64 = 256;

/// Cycle safety net per detailed interval (the deadlock guard inside the
/// simulator fires long before this).
const INTERVAL_MAX_CYCLES: u64 = 1 << 26;

/// Shape of a sampled run: how much is simulated in detail, and how often.
///
/// Instruction counts are dynamic instructions. Every `period` instructions,
/// the engine runs one detailed window of `warmup + interval` instructions:
/// the first `warmup` refill the pipeline and are discarded, the next
/// `interval` are measured. Everything else runs functionally with
/// microarchitectural warming.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleConfig {
    /// Detailed instructions before each measure window whose statistics
    /// are discarded (pipeline refill after the functional gap).
    pub warmup: u64,
    /// Measured instructions per interval.
    pub interval: u64,
    /// One detailed window begins every `period` instructions.
    pub period: u64,
    /// Detailed **head stratum**: the first `head` instructions are measured
    /// as one window, cold start included, before periodic sampling begins.
    /// Program startup (data-structure initialization, cold caches) is a
    /// one-time phase whose CPI can be several times the steady state;
    /// sparse windows either hit or miss it, swinging the whole-run estimate.
    /// Measuring it exactly and extrapolating only the steady remainder
    /// removes that failure mode (stratified sampling).
    pub head: u64,
    /// Hard cap on dynamic instructions (the fast-forward stops here as if
    /// the program had halted); `u64::MAX` = run to `halt`.
    pub max_insts: u64,
    /// Hard cap on measured intervals; `None` = one per period boundary.
    pub max_intervals: Option<usize>,
    /// Place each detailed window at a deterministic pseudo-random offset
    /// inside its period (default), instead of always at the period start.
    /// Strictly systematic placement aliases with loop phase structure —
    /// when the period is near-commensurate with a program phase, every
    /// window lands on the same phase point and the estimate inherits its
    /// bias; the jitter breaks the resonance. Offsets come from a fixed
    /// SplitMix64 hash of the period index, so runs stay bit-reproducible.
    pub jitter: bool,
}

impl SampleConfig {
    /// Builds a configuration measuring `interval` instructions after
    /// `warmup` detailed-warmup instructions, once every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `warmup + interval > period`.
    pub fn new(warmup: u64, interval: u64, period: u64) -> SampleConfig {
        let sc = SampleConfig {
            warmup,
            interval,
            period,
            head: 0,
            max_insts: u64::MAX,
            max_intervals: None,
            jitter: true,
        };
        sc.validate();
        sc
    }

    /// Disables window-offset jitter (windows then start exactly at period
    /// boundaries — useful for tiling tests and debugging).
    #[must_use]
    pub fn without_jitter(mut self) -> SampleConfig {
        self.jitter = false;
        self
    }

    /// Measures the first `head` instructions in detail as a dedicated
    /// stratum (see [`SampleConfig::head`]).
    #[must_use]
    pub fn with_head(mut self, head: u64) -> SampleConfig {
        self.head = head;
        self
    }

    /// Caps the dynamic instruction count (for comparisons against fueled
    /// full runs).
    #[must_use]
    pub fn with_max_insts(mut self, max_insts: u64) -> SampleConfig {
        self.max_insts = max_insts;
        self
    }

    /// Caps the number of measured intervals.
    #[must_use]
    pub fn with_max_intervals(mut self, n: usize) -> SampleConfig {
        self.max_intervals = Some(n);
        self
    }

    /// Detailed instructions per period (warmup + measure, before drain
    /// padding).
    pub fn detailed_per_period(&self) -> u64 {
        self.warmup + self.interval
    }

    fn validate(&self) {
        assert!(self.interval > 0, "a measure interval needs instructions");
        assert!(
            self.detailed_per_period() <= self.period,
            "warmup + interval must fit inside the sampling period"
        );
    }
}

impl Default for SampleConfig {
    /// The tuning used by the validation harness at default workload scale:
    /// 1/8 of the program in detail, intervals of 1.5k instructions.
    fn default() -> SampleConfig {
        SampleConfig::new(500, 1500, 16_000)
    }
}

/// Feeds one functional instruction to the warming hooks, mirroring what
/// the detailed front end and memory pipeline would have touched on the
/// correct path.
struct Warmer {
    line_bytes: u64,
    last_line: u64,
}

impl Warmer {
    fn new(cfg: &MachineConfig) -> Warmer {
        Warmer {
            line_bytes: cfg.hier.l1i.line_bytes as u64,
            last_line: u64::MAX,
        }
    }

    fn observe(&mut self, d: &DynInst, warm: &mut WarmState) {
        let addr = Program::inst_addr(d.pc);
        let line = addr / self.line_bytes;
        if line != self.last_line {
            warm.mem.warm_inst(addr);
            self.last_line = line;
        }
        let op = d.inst.op;
        if op.is_load() {
            warm.mem.warm_data(d.mem_addr, false);
        } else if op.is_store() {
            warm.mem.warm_data(d.mem_addr, true);
        }
        if op.is_control() {
            let _ =
                warm.frontend
                    .process(d.pc as u64, classify_control(d), d.taken, d.next_pc as u64);
        }
    }
}

/// SplitMix64 finalizer: hashes the period index into that period's window
/// offset. Fixed constants, no state — sampled runs are bit-reproducible.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Cumulative cost features over a dynamic-instruction prefix, collected by
/// the shadow profile: the drivers of cycle cost a functional pass can see.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Features {
    insts: u64,
    /// Data accesses served by the L2 (L1 misses).
    l2: u64,
    /// Data accesses served by memory (L2 misses).
    mem: u64,
    /// Mispredicted control instructions.
    mispred: u64,
}

impl Features {
    fn minus(&self, o: &Features) -> Features {
        Features {
            insts: self.insts - o.insts,
            l2: self.l2 - o.l2,
            mem: self.mem - o.mem,
            mispred: self.mispred - o.mispred,
        }
    }

    fn vec(&self) -> [f64; 4] {
        [
            self.insts as f64,
            self.l2 as f64,
            self.mem as f64,
            self.mispred as f64,
        ]
    }
}

/// Shadow microarchitectural structures observing **every** dynamic
/// instruction uniformly. They are never handed to the simulator and never
/// reset, so the feature counts of any two instruction ranges are directly
/// comparable — unlike the warming structures, which detailed intervals
/// train more precisely over the regions they cover.
struct Shadow {
    mem: MemHierarchy,
    frontend: FrontEnd,
    cum: Features,
}

impl Shadow {
    fn new(cfg: &MachineConfig) -> Shadow {
        Shadow {
            mem: MemHierarchy::new(cfg.hier),
            frontend: FrontEnd::new(cfg.bpred, cfg.btb, cfg.ras_entries),
            cum: Features::default(),
        }
    }

    #[inline]
    fn observe(&mut self, d: &DynInst) {
        self.cum.insts += 1;
        let op = d.inst.op;
        if op.is_load() || op.is_store() {
            match self.mem.warm_data(d.mem_addr, op.is_store()) {
                reno_mem::ServedBy::L1 => {}
                reno_mem::ServedBy::L2 => self.cum.l2 += 1,
                reno_mem::ServedBy::Mem => self.cum.mem += 1,
            }
        }
        if op.is_control() {
            let ok =
                self.frontend
                    .process(d.pc as u64, classify_control(d), d.taken, d.next_pc as u64);
            self.cum.mispred += u64::from(!ok);
        }
    }
}

/// Snapshot points of the shadow feature counters: every stratum boundary
/// (periodic) plus explicitly registered instants (measure-window edges).
struct Boundaries {
    explicit: std::collections::VecDeque<u64>,
    next_periodic: u64,
    period: u64,
    snaps: Vec<(u64, Features)>,
}

impl Boundaries {
    fn new(grid_start: u64, period: u64) -> Boundaries {
        Boundaries {
            explicit: std::collections::VecDeque::new(),
            next_periodic: grid_start,
            period: period.max(1),
            snaps: Vec::new(),
        }
    }

    /// Registers a future snapshot instant (must not lie in the past).
    fn insert(&mut self, inst: u64) {
        let pos = self.explicit.partition_point(|&x| x < inst);
        if self.explicit.get(pos) != Some(&inst) {
            self.explicit.insert(pos, inst);
        }
    }

    /// Takes any snapshots whose instant has been reached.
    #[inline]
    fn cross(&mut self, executed: u64, cum: &Features) {
        while self.explicit.front().is_some_and(|&b| b <= executed)
            || self.next_periodic <= executed
        {
            let e = self.explicit.front().copied().unwrap_or(u64::MAX);
            let b = e.min(self.next_periodic);
            if b == self.next_periodic {
                self.next_periodic += self.period;
            }
            if b == e {
                self.explicit.pop_front();
            }
            if self.snaps.last().map(|&(i, _)| i) != Some(b) {
                self.snaps.push((b, *cum));
            }
        }
    }

    /// The cumulative features at `inst`, if it was snapped (or the final
    /// totals when `inst` is at/past the end of the run).
    fn at(&self, inst: u64, total: u64, final_cum: &Features) -> Option<Features> {
        if inst >= total {
            return Some(*final_cum);
        }
        self.snaps
            .binary_search_by_key(&inst, |&(i, _)| i)
            .ok()
            .map(|k| self.snaps[k].1)
    }
}

/// The shadow profile of one sampling pass.
struct Profile {
    shadow: Shadow,
    bounds: Boundaries,
}

/// Tracks the pages the program has written since its initial image, from
/// the observed store stream — checkpoints then snapshot exactly these
/// pages instead of scanning the whole resident image.
#[derive(Default)]
struct DirtyPages {
    pages: std::collections::HashSet<u64>,
    last: u64,
    sorted: Vec<u64>,
}

impl DirtyPages {
    fn new() -> DirtyPages {
        DirtyPages {
            pages: std::collections::HashSet::new(),
            last: u64::MAX,
            sorted: Vec::new(),
        }
    }

    #[inline]
    fn note_store(&mut self, addr: u64, width: u64) {
        // A store may straddle a page boundary; cover both ends.
        for a in [addr, addr + width.saturating_sub(1)] {
            let pno = a / reno_func::PAGE_BYTES as u64;
            if pno != self.last {
                self.last = pno;
                self.pages.insert(pno);
            }
        }
    }

    /// Current dirty set, sorted (cached between checkpoints when no new
    /// page appeared).
    fn sorted(&mut self) -> &[u64] {
        if self.sorted.len() != self.pages.len() {
            self.sorted.clear();
            self.sorted.extend(self.pages.iter().copied());
            self.sorted.sort_unstable();
        }
        &self.sorted
    }
}

/// Functionally advances `cpu` to dynamic instruction `until` (or `halt`),
/// warming `warm` for every instruction at or past `warm_from`, noting
/// every written page in `dirty`, and feeding the shadow profile (which
/// observes *every* instruction, skip region or not).
#[allow(clippy::too_many_arguments)]
fn fast_forward(
    cpu: &mut Cpu,
    program: &Program,
    warm: &mut WarmState,
    warmer: &mut Warmer,
    dirty: &mut DirtyPages,
    mut profile: Option<&mut Profile>,
    until: u64,
    warm_from: u64,
) -> Result<(), ExecError> {
    while !cpu.halted() && cpu.executed() < until {
        let pre = cpu.executed();
        if let Some(p) = profile.as_deref_mut() {
            p.bounds.cross(pre, &p.shadow.cum);
        }
        let Some(d) = cpu.step(program)? else { break };
        if d.inst.op.is_store() {
            dirty.note_store(d.mem_addr, d.inst.op.mem_width().map_or(0, |w| w.bytes()));
        }
        if let Some(p) = profile.as_deref_mut() {
            p.shadow.observe(&d);
        }
        if pre >= warm_from {
            warmer.observe(&d, warm);
        }
    }
    Ok(())
}

/// One sampling pass: functional execution of the whole program with
/// warming and dirty-page tracking, measuring a detailed window at each
/// requested checkpoint position.
struct PassOutput {
    head: Option<IntervalStat>,
    /// `(checkpoint position, window)` pairs, in program order.
    windows: Vec<(u64, IntervalStat)>,
    total_insts: u64,
    halted: bool,
    checksum: u64,
    digest: u64,
    detailed_insts: u64,
    error: Option<ExecError>,
}

/// Runs one pass over the program. `positions` yields checkpoint positions
/// in increasing order (an infinite grid iterator or an explicit list);
/// positions at or past halt / `max_insts` end the measuring.
fn sample_pass(
    program: &Program,
    cfg: &MachineConfig,
    sc: &SampleConfig,
    measure_head: bool,
    positions: &mut dyn Iterator<Item = u64>,
    mut profile: Option<&mut Profile>,
) -> PassOutput {
    let mut cpu = Cpu::new(program);
    // The initial memory image checkpoints delta against; built once.
    let base_mem = cpu.mem().clone();
    let mut warm = WarmState::cold(cfg);
    let mut warmer = Warmer::new(cfg);
    let mut dirty = DirtyPages::new();
    let mut head: Option<IntervalStat> = None;
    let mut windows: Vec<(u64, IntervalStat)> = Vec::new();
    let mut detailed_insts = 0u64;
    // Instructions below this index were already warmed by a detailed
    // interval (which trains the same structures more precisely).
    let mut warmed_until = 0u64;
    let mut error: Option<ExecError> = None;

    // Head stratum: one detailed window over the program start, cold
    // structures and pipeline fill included — exactly what the full run
    // experiences there.
    if measure_head && sc.head > 0 && sc.max_insts > 0 {
        let budget = (sc.head + DRAIN_PAD).min(sc.max_insts);
        let end = sc.head.min(budget);
        let sim = Simulator::from_cpu(program, cfg.clone(), Cpu::new(program), budget)
            .with_warm_state(warm)
            .with_measure_window(0, end);
        let (r, trained) = sim.run_with_state(INTERVAL_MAX_CYCLES);
        warm = trained;
        warm.mem.reset_timing();
        if let Some((s, e)) = r.measured() {
            if e.retired > s.retired {
                head = Some(IntervalStat::from_marks(0, 0, &s, &e));
            }
        }
        detailed_insts += r.retired;
        warmed_until = r.retired;
    }

    for target in positions {
        let target = target.min(sc.max_insts);
        if let Err(e) = fast_forward(
            &mut cpu,
            program,
            &mut warm,
            &mut warmer,
            &mut dirty,
            profile.as_deref_mut(),
            target,
            warmed_until,
        ) {
            error = Some(e);
            break;
        }
        if cpu.halted() || cpu.executed() >= sc.max_insts {
            break;
        }
        if sc.max_intervals.is_some_and(|m| windows.len() >= m) {
            break;
        }

        // Checkpoint boundary: snapshot, serialize, restore — every interval
        // exercises the full save/restore path.
        let here = cpu.executed();
        let ck = Checkpoint::take_with_dirty_pages(&cpu, dirty.sorted());
        debug_assert_eq!(ck.executed(), here);
        let restored = Checkpoint::from_bytes(&ck.to_bytes())
            .expect("a just-serialized checkpoint deserializes")
            .restore_with_base(&base_mem);
        // The dirty-page set must cover every written page; in debug builds,
        // verify the restored image against the live machine byte for byte.
        debug_assert!(restored.mem().delta_from(cpu.mem()).is_empty());
        debug_assert_eq!(restored.state_digest(), cpu.state_digest());

        // Detailed window: warmup + measure + drain pad, clipped to the
        // instruction cap.
        let budget = (sc.detailed_per_period() + DRAIN_PAD).min(sc.max_insts - here);
        let end = sc.detailed_per_period().min(budget);
        let start = sc.warmup.min(end);
        warm.mem.reset_timing();
        warm.mem.reset_stats();
        warm.frontend.reset_stats();
        let sim = Simulator::from_cpu(program, cfg.clone(), restored, budget)
            .with_warm_state(warm)
            .with_measure_window(start, end);
        let (r, trained) = sim.run_with_state(INTERVAL_MAX_CYCLES);
        warm = trained;
        warm.mem.reset_timing();
        if let Some((s, e)) = r.measured() {
            if e.retired > s.retired {
                if let Some(p) = profile.as_deref_mut() {
                    // Snapshot the shadow counters at the window's exact
                    // edges when the functional pass reaches them.
                    p.bounds.insert(here + s.retired);
                    p.bounds.insert(here + e.retired);
                }
                windows.push((here, IntervalStat::from_marks(here + s.retired, 0, &s, &e)));
            }
        }
        detailed_insts += r.retired;
        warmed_until = here + r.retired;
    }

    // Finish the functional pass for the exact architectural totals (no
    // further warming needed: nothing detailed runs past this point).
    if error.is_none() {
        if let Err(e) = fast_forward(
            &mut cpu,
            program,
            &mut warm,
            &mut warmer,
            &mut dirty,
            profile.as_deref_mut(),
            sc.max_insts,
            u64::MAX,
        ) {
            error = Some(e);
        }
    }

    PassOutput {
        head,
        windows,
        total_insts: cpu.executed(),
        halted: cpu.halted(),
        checksum: cpu.checksum(),
        digest: cpu.state_digest(),
        detailed_insts,
        error,
    }
}

/// The jittered checkpoint position for stratum `s` of width `period`
/// starting at `grid_start`: a deterministic offset within the stratum's
/// slack (so the whole window fits inside the stratum).
fn stratum_position(sc: &SampleConfig, grid_start: u64, period: u64, s: u64) -> u64 {
    let slack = period.saturating_sub(sc.detailed_per_period() + DRAIN_PAD);
    let offset = if sc.jitter && slack > 0 {
        // Salt with the period so refinement rounds draw fresh offsets.
        mix64(s ^ period) % (slack + 1)
    } else {
        0
    };
    grid_start
        .saturating_add(s.saturating_mul(period))
        .saturating_add(offset)
}

fn assemble(sc: &SampleConfig, period: u64, out: PassOutput) -> SampledResult {
    let mut intervals: Vec<IntervalStat> = out
        .windows
        .into_iter()
        .map(|(pos, mut iv)| {
            iv.stratum = pos.saturating_sub(sc.head) / period.max(1);
            iv
        })
        .collect();
    intervals.sort_by_key(|iv| iv.start_inst);
    SampledResult {
        head: out.head,
        intervals,
        grid_start: sc.head,
        period,
        total_insts: out.total_insts,
        halted: out.halted,
        checksum: out.checksum,
        digest: out.digest,
        detailed_insts: out.detailed_insts,
        error: out.error,
        model_cycles: None,
        model_r2: None,
    }
}

#[inline]
fn dot4(a: &[f64; 4], b: &[f64; 4]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3]
}

/// Least-squares fit of `y ≈ β · x` via ridge-stabilized normal equations
/// (4×4 Gaussian elimination with partial pivoting).
fn ls_fit(xs: &[[f64; 4]], ys: &[f64]) -> Option<[f64; 4]> {
    let mut a = [[0.0f64; 4]; 4];
    let mut b = [0.0f64; 4];
    for (x, &y) in xs.iter().zip(ys) {
        for i in 0..4 {
            for j in 0..4 {
                a[i][j] += x[i] * x[j];
            }
            b[i] += x[i] * y;
        }
    }
    let ridge = 1e-9 * (a[0][0] + a[1][1] + a[2][2] + a[3][3]).max(1.0);
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += ridge;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..4 {
        let piv = (col..4).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[piv][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for row in col + 1..4 {
            let f = a[row][col] / a[col][col];
            for k in col..4 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut beta = [0.0f64; 4];
    for col in (0..4).rev() {
        let mut v = b[col];
        for k in col + 1..4 {
            v -= a[col][k] * beta[k];
        }
        beta[col] = v / a[col][col];
    }
    Some(beta)
}

/// Minimum R² on the measured windows for the cycle model to be trusted
/// with extrapolating unmeasured strata.
const MODEL_MIN_R2: f64 = 0.85;
/// Minimum measured windows before fitting a 4-parameter model.
const MODEL_MIN_WINDOWS: usize = 8;

/// Model-assisted estimation: fit `cycles ≈ β · (insts, L2-served,
/// mem-served, mispredicts)` on the measured windows against the shadow
/// profile's exact per-range features, then estimate every stratum from its
/// own features — measured strata keep their measurement as a local
/// multiplicative correction, unmeasured strata use the model outright.
/// The whole-run profile is exact (the shadow sees every instruction), so
/// phase structure that never lined up with a window still lands in the
/// estimate through its features.
fn model_assist(sc: &SampleConfig, period: u64, result: &mut SampledResult, prof: &Profile) {
    if result.intervals.len() < MODEL_MIN_WINDOWS || result.total_insts == 0 || period == 0 {
        return;
    }
    let total = result.total_insts;
    let final_cum = &prof.shadow.cum;
    let feat = |a: u64, b: u64| -> Option<Features> {
        let fa = prof.bounds.at(a, total, final_cum)?;
        let fb = prof.bounds.at(b, total, final_cum)?;
        Some(fb.minus(&fa))
    };

    let mut xs: Vec<[f64; 4]> = Vec::with_capacity(result.intervals.len());
    let mut ys: Vec<f64> = Vec::with_capacity(result.intervals.len());
    for iv in &result.intervals {
        let Some(f) = feat(iv.start_inst, iv.start_inst + iv.insts) else {
            return;
        };
        xs.push(f.vec());
        ys.push(iv.cycles as f64);
    }
    let Some(beta) = ls_fit(&xs, &ys) else { return };

    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let sst: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
    let ssr: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| {
            let e = y - dot4(&beta, x);
            e * e
        })
        .sum();
    let r2 = if sst <= f64::EPSILON {
        1.0
    } else {
        1.0 - ssr / sst
    };
    result.model_r2 = Some(r2);
    if r2 < MODEL_MIN_R2 {
        return;
    }

    let steady = result.steady_cpi();
    let by_stratum: std::collections::HashMap<u64, &crate::IntervalStat> =
        result.intervals.iter().map(|iv| (iv.stratum, iv)).collect();
    let mut cycles = 0.0f64;
    // The head window covers [0, grid_start) exactly; without one, the
    // region is extrapolated through the model like any other.
    let grid_start = sc.head.min(total);
    match &result.head {
        Some(h) => cycles += h.cycles as f64,
        None => {
            if grid_start > 0 {
                let Some(f) = feat(0, grid_start) else { return };
                let pred = dot4(&beta, &f.vec());
                cycles += if pred > 0.0 {
                    pred
                } else {
                    steady * f.insts as f64
                };
            }
        }
    }
    let strata = total.saturating_sub(grid_start).div_ceil(period.max(1));
    for s in 0..strata {
        let s0 = grid_start + s * period;
        let s1 = (s0 + period).min(total);
        let Some(f) = feat(s0, s1) else { return };
        let pred = dot4(&beta, &f.vec());
        let est = match by_stratum.get(&s) {
            Some(iv) => {
                let Some(fw) = feat(iv.start_inst, iv.start_inst + iv.insts) else {
                    return;
                };
                let predw = dot4(&beta, &fw.vec());
                if pred > 0.0 && predw > 1e-6 {
                    // Local multiplicative correction: how the measured
                    // window actually performed vs. what the model said.
                    pred * (iv.cycles as f64 / predw).clamp(0.5, 2.0)
                } else {
                    iv.cpi() * (s1 - s0) as f64
                }
            }
            None if pred > 0.0 => pred,
            None => steady * (s1 - s0) as f64,
        };
        cycles += est;
    }
    result.model_cycles = Some(cycles);
}

/// Runs `program` under `cfg` with checkpointed fast-forward and sampled
/// detailed measurement (see the crate docs for the phase structure and the
/// estimation methodology).
///
/// Architectural results ([`SampledResult::checksum`],
/// [`SampledResult::digest`], [`SampledResult::total_insts`]) are exact —
/// the whole program executes functionally. Timing statistics are estimates
/// extrapolated from the measured intervals.
///
/// # Panics
///
/// Panics if `sc` is inconsistent (see [`SampleConfig::new`]).
pub fn run_sampled(program: &Program, cfg: MachineConfig, sc: &SampleConfig) -> SampledResult {
    sc.validate();
    let mut profile = Profile {
        shadow: Shadow::new(&cfg),
        bounds: Boundaries::new(sc.head, sc.period),
    };
    let mut grid = (0u64..).map(|s| stratum_position(sc, sc.head, sc.period, s));
    let out = sample_pass(program, &cfg, sc, true, &mut grid, Some(&mut profile));
    let mut result = assemble(sc, sc.period, out);
    model_assist(sc, sc.period, &mut result, &profile);
    result
}

/// Runs `program` fully detailed and reports it as a degenerate
/// [`SampledResult`]: one "head" window covering the entire run, estimate
/// == measurement. The honest escape hatch of [`run_sampled_auto`] for
/// programs sampling cannot serve.
fn full_detail(program: &Program, cfg: MachineConfig, max_insts: u64) -> SampledResult {
    let r = Simulator::with_fuel(program, cfg, max_insts)
        .with_measure_window(0, u64::MAX)
        .run(u64::MAX);
    let (s, e) = r.measured().expect("the start mark fires at cycle 0");
    SampledResult {
        head: Some(IntervalStat::from_marks(0, 0, &s, &e)),
        intervals: Vec::new(),
        grid_start: r.retired,
        period: 1,
        total_insts: r.retired,
        halted: r.halted,
        checksum: r.checksum,
        digest: r.digest,
        detailed_insts: r.retired,
        error: None,
        model_cycles: None,
        model_r2: None,
    }
}

/// The production entry point: sampled simulation with an accuracy
/// escalation ladder.
///
/// * **Round 0** — sparse sampling (32k-instruction periods, 1k detailed
///   warmup per window). Accepted when enough windows were measured, the
///   shadow-profile cycle model fit them well, and their dispersion
///   (95% bound) is moderate — the common case for phase-stable programs,
///   at a few percent detailed cost.
/// * **Round 1** — dense sampling (8k periods) with a 2k warmup. The long
///   warmup matters: window restarts lose long-range microarchitectural
///   state (RENO's integration table most of all), and bursty programs
///   need both the density and the deeper refill. Accepted under the same
///   window-count/model gates with a tightened R² requirement.
/// * **Fallback** — full detailed simulation. Programs too short or too
///   irregular to sample (every window gate failed) are simply measured;
///   sampling is a bargain for long programs, not a mandate for short ones.
///
/// The gates only ever consult a cheap functional length probe and the
/// runs' own diagnostics (window count, model R², window dispersion), so
/// the choice is deterministic.
pub fn run_sampled_auto(program: &Program, cfg: MachineConfig, max_insts: u64) -> SampledResult {
    const HEAD: u64 = 16384;
    const MIN_WINDOWS: u64 = 12;
    /// Detailed warmup per window: deep enough to rebuild the long-range
    /// state a restart loses (RENO's integration table above all).
    const WARMUP: u64 = 2048;
    const INTERVAL: u64 = 768;

    // Length probe: a bare functional pass (several times cheaper than even
    // the warming fast-forward) so rungs that cannot field enough windows
    // are skipped instead of run and discarded.
    let total = {
        let mut cpu = Cpu::new(program);
        match cpu.run_program(program, max_insts) {
            Ok(r) => r.executed,
            Err(_) => cpu.executed(),
        }
    };

    let diag = |r: &SampledResult| {
        (
            r.intervals.len() as u64,
            r.model_r2
                .filter(|_| r.model_cycles.is_some())
                .unwrap_or(-1.0),
            r.cpi_ci95_rel_pct(),
        )
    };

    // Round 0: sparse (~48 windows on long programs). Accept on a tight
    // dispersion bound alone, or on a trusted model with moderate
    // dispersion — the better the model fits, the more window dispersion it
    // has already explained away.
    let p0 = (total / 48).max(32768);
    if total.saturating_sub(HEAD) / p0 >= MIN_WINDOWS {
        let sc0 = SampleConfig::new(WARMUP, INTERVAL, p0)
            .with_head(HEAD)
            .with_max_insts(max_insts);
        let r0 = run_sampled(program, cfg.clone(), &sc0);
        let (iv, r2, ci) = diag(&r0);
        if iv >= MIN_WINDOWS
            && (ci <= 1.0
                || (r2 >= 0.90 && ci <= 4.5)
                || (r2 >= 0.95 && ci <= 6.5)
                || (r2 >= 0.99 && ci <= 8.0))
        {
            return r0;
        }
    }

    // Round 1: dense. A trusted model is mandatory here — programs that
    // reach this rung have dispersion only a model can tame.
    let p1 = 12288u64;
    if total.saturating_sub(HEAD) / p1 >= MIN_WINDOWS {
        let sc1 = SampleConfig::new(WARMUP, INTERVAL, p1)
            .with_head(HEAD)
            .with_max_insts(max_insts);
        let r1 = run_sampled(program, cfg.clone(), &sc1);
        let (iv, r2, ci) = diag(&r1);
        if iv >= MIN_WINDOWS && ((r2 >= 0.93 && ci <= 8.0) || (r2 >= 0.99 && ci <= 12.0)) {
            return r1;
        }
    }

    full_detail(program, cfg, max_insts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reno_core::RenoConfig;
    use reno_isa::{Asm, Reg};

    /// A mixed kernel (loads, stores, folds, a data-dependent walk) whose
    /// working set is `8 * (mask + 1)` bytes, so tests can dial the cold-start
    /// cost independently of the run length.
    fn kernel_with(iters: i64, mask: i16) -> Program {
        let mut a = Asm::new();
        let buf = a.zeros("buf", 8 * (mask as usize + 1));
        a.li(Reg::S0, buf as i64);
        a.li(Reg::T0, iters);
        a.li(Reg::V0, 0);
        a.label("outer");
        a.andi(Reg::T1, Reg::T0, mask);
        a.slli(Reg::T1, Reg::T1, 3);
        a.add(Reg::T1, Reg::T1, Reg::S0);
        a.ld(Reg::T2, Reg::T1, 0);
        a.add(Reg::V0, Reg::V0, Reg::T2);
        a.st(Reg::V0, Reg::T1, 0);
        a.addi(Reg::V0, Reg::V0, 5);
        a.addi(Reg::V0, Reg::V0, -3);
        a.xor(Reg::V0, Reg::V0, Reg::T0);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "outer");
        a.out(Reg::V0);
        a.halt();
        a.assemble().unwrap()
    }

    fn kernel(iters: i64) -> Program {
        kernel_with(iters, 255)
    }

    fn cfg() -> MachineConfig {
        MachineConfig::four_wide(RenoConfig::reno())
    }

    #[test]
    fn architectural_results_are_exact() {
        let p = kernel(900);
        let (ref_cpu, ref_run) = reno_func::run_to_completion(&p, 1 << 22).unwrap();
        let s = run_sampled(&p, cfg(), &SampleConfig::new(64, 128, 1024));
        assert!(s.halted);
        assert!(s.error.is_none());
        assert_eq!(s.total_insts, ref_run.executed);
        assert_eq!(s.checksum, ref_cpu.checksum());
        assert_eq!(s.digest, ref_cpu.state_digest());
        assert!(!s.intervals.is_empty());
    }

    #[test]
    fn continuous_sampling_tracks_full_run_closely() {
        // period == warmup + interval: detailed windows tile the program, so
        // the estimate must land very close to the full detailed run. The
        // small working set (256B) keeps the one-time cold-start cost — which
        // sampling deliberately leaves out of the measured windows — in the
        // noise of this short run.
        let p = kernel_with(3000, 31);
        let full = Simulator::new(&p, cfg()).run(1 << 24);
        let s = run_sampled(&p, cfg(), &SampleConfig::new(256, 768, 1024));
        let full_cpi = full.cycles as f64 / full.retired as f64;
        let err = (s.est_cpi() - full_cpi).abs() / full_cpi;
        assert!(
            err < 0.05,
            "continuous sampling drifted {:.2}% from full CPI {:.4} (est {:.4})",
            err * 100.0,
            full_cpi,
            s.est_cpi()
        );
        assert!(s.detailed_fraction() > 0.9, "windows tile the whole run");
    }

    #[test]
    fn interval_bookkeeping_is_consistent() {
        let p = kernel(1500);
        let sc = SampleConfig::new(100, 300, 2048);
        let s = run_sampled(&p, cfg(), &sc);
        for (k, i) in s.intervals.iter().enumerate() {
            // Boundaries land on retire-bundle edges, so a window may run a
            // few instructions long.
            assert!(i.insts > 0 && i.insts <= sc.interval + 8);
            assert!(i.cycles >= i.insts / 8, "4-wide bounds the IPC");
            // Interval k starts inside period k, after its warmup.
            let period_base = k as u64 * sc.period;
            assert!(
                i.start_inst >= period_base + sc.warmup && i.start_inst < period_base + sc.period,
                "interval {k} starts at {} (period base {period_base})",
                i.start_inst
            );
        }
        assert_eq!(
            s.measured_insts(),
            s.intervals.iter().map(|i| i.insts).sum()
        );
        assert!(s.detailed_insts >= s.measured_insts());
        assert!(s.detailed_fraction() < 0.5, "most of the run fast-forwards");
    }

    #[test]
    fn max_intervals_and_max_insts_cap_the_run() {
        let p = kernel(2000);
        let s = run_sampled(
            &p,
            cfg(),
            &SampleConfig::new(32, 64, 512).with_max_intervals(3),
        );
        assert_eq!(s.intervals.len(), 3);
        assert!(s.halted, "functional pass still finishes the program");

        let s = run_sampled(
            &p,
            cfg(),
            &SampleConfig::new(32, 64, 512).with_max_insts(1000),
        );
        assert!(!s.halted);
        assert_eq!(s.total_insts, 1000);
    }

    #[test]
    fn program_shorter_than_warmup_measures_nothing() {
        let mut a = Asm::new();
        a.li(Reg::T0, 1);
        a.out(Reg::T0);
        a.halt();
        let p = a.assemble().unwrap();
        let s = run_sampled(&p, cfg(), &SampleConfig::new(64, 64, 1024));
        assert!(s.halted);
        assert_eq!(s.est_cpi(), 0.0);
        assert!(s.intervals.is_empty());
        assert_eq!(s.total_insts, 3);
    }

    #[test]
    #[should_panic(expected = "must fit inside the sampling period")]
    fn oversized_window_rejected() {
        let _ = SampleConfig::new(600, 600, 1000);
    }
}
