//! # reno-sample — time-parallel sampled simulation over checkpoint shards
//!
//! The paper evaluates RENO over full SPEC2000/MediaBench runs — hundreds of
//! millions of dynamic instructions — which a cycle-level simulator cannot
//! afford end-to-end. This crate implements the standard answer from the
//! SimPoint/SMARTS tradition: execute most of the program *functionally*
//! (fast), keep long-lived microarchitectural state *warm* while doing so,
//! and pay detailed cycle-level cost only inside short, periodic
//! **measurement intervals** whose statistics extrapolate to the whole run
//! with a quantified error bound.
//!
//! A sampled run is **sharded in time** at checkpoint boundaries. A cheap
//! serial pass executes the program once on `reno-func`'s predecoded
//! basic-block engine, taking a dirty-page [`reno_func::Checkpoint`] at
//! each segment head; the checkpoint-delimited segments then fan across
//! [`reno_par::par_map`] workers, and each worker walks its segment's
//! periods independently:
//!
//! ```text
//!  |<---------------------------- period ----------------------------->|
//!  | fast-forward (functional + warming)     | warmup   | measure      |
//!  |  Cpu::step_decoded streams the segment; | detailed | detailed,    |
//!  |  caches, branch predictor and BTB/RAS   | pipeline | counters     |
//!  |  train at functional cost               | (stats   | recorded     |
//!  |                                         | dropped) | via marks    |
//! ```
//!
//! * **Restore**: a worker deserializes its checkpoint and restores it
//!   against a shared base image — every segment exercises the full
//!   save/restore path, which a differential property suite pins as
//!   bit-identical to uninterrupted execution. Before its first stratum it
//!   replays a warm margin (at least an L2-refill horizon of functional
//!   warming), so no window is measured against segment-cold structures.
//! * **Fast-forward** feeds every dynamic instruction to the warming
//!   hooks: cache directories via [`reno_mem::MemHierarchy::warm_data`] /
//!   `warm_inst`, and the direction predictor, BTB and RAS via
//!   [`reno_uarch::FrontEnd::process`] (classified exactly as the fetch
//!   stage would, via [`reno_sim::classify_control`]).
//! * **Warmup → measure**: the detailed simulator runs `warmup + interval`
//!   instructions with [`reno_sim::Simulator::with_measure_window`] marking
//!   the two boundaries; the pipeline is in full flight at both marks, so
//!   the delta has neither fill nor drain edges. The trained structures come
//!   back via [`reno_sim::Simulator::run_with_state`] and carry into the
//!   next period of the same segment.
//!
//! Segmentation derives from the sampling config alone — never from the
//! host — and the merge is order-preserving, so the result is
//! **byte-identical at any `RENO_THREADS`** (a dedicated differential test
//! and thread-forced CI golden diffs enforce this bit-for-bit).
//!
//! The whole-run estimate uses the ratio estimator (total measured cycles /
//! total measured instructions) and reports a 95% confidence bound from the
//! dispersion of per-interval CPI samples ([`SampledResult::cpi_ci95_rel_pct`]).
//! Measure intervals inherit the simulator's zero-allocation steady state
//! (enforced by the `reno-alloctrack` counting-allocator suite).
//!
//! ```
//! use reno_core::RenoConfig;
//! use reno_isa::{Asm, Reg};
//! use reno_sample::{run_sampled, SampleConfig};
//! use reno_sim::{MachineConfig, Simulator};
//!
//! let mut a = Asm::new();
//! let buf = a.zeros("buf", 256);
//! a.li(Reg::S0, buf as i64);
//! a.li(Reg::T0, 2000);
//! a.label("loop");
//! a.andi(Reg::T1, Reg::T0, 31);
//! a.slli(Reg::T1, Reg::T1, 3);
//! a.add(Reg::T1, Reg::T1, Reg::S0);
//! a.ld(Reg::T2, Reg::T1, 0);
//! a.addi(Reg::T2, Reg::T2, 3);
//! a.st(Reg::T2, Reg::T1, 0);
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bnez(Reg::T0, "loop");
//! a.out(Reg::T2);
//! a.halt();
//! let prog = a.assemble()?;
//!
//! let cfg = MachineConfig::four_wide(RenoConfig::reno());
//! let sampled = run_sampled(&prog, cfg.clone(), &SampleConfig::new(128, 384, 1024));
//! let full = Simulator::new(&prog, cfg).run(1 << 24);
//!
//! // The sampled run executes the same program: identical architectural
//! // results, and a CPI estimate close to the full detailed run's.
//! assert!(sampled.halted);
//! assert_eq!(sampled.checksum, full.checksum);
//! assert_eq!(sampled.total_insts, full.retired);
//! let full_cpi = full.cycles as f64 / full.retired as f64;
//! assert!((sampled.est_cpi() - full_cpi).abs() / full_cpi < 0.10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod engine;
mod result;

pub use engine::{
    run_sampled, run_sampled_auto, run_sampled_with_pass, CheckpointPass, PassError, SampleConfig,
    FAILPOINT_SITES, FP_MEASURE_WINDOW, FP_PASS_CHECKPOINT, FP_SEGMENT_RESTORE, FP_WARM_REPLAY,
};
pub use result::{
    ExactSegment, FaultRecovery, IntervalStat, SampleError, SampledResult, SegmentFault,
};
