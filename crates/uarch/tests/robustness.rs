//! Property tests: predictor structures never panic and behave sanely on
//! arbitrary input sequences.

use proptest::prelude::*;
use reno_uarch::{Btb, ControlKind, FrontEnd, HybridPredictor, Ras, StoreSets};

proptest! {
    #[test]
    fn predictor_accepts_any_stream(ops in prop::collection::vec((any::<u16>(), any::<bool>()), 1..500)) {
        let mut p = HybridPredictor::default();
        for (pc, taken) in ops {
            let _ = p.predict_and_update(pc as u64, taken);
        }
    }

    #[test]
    fn btb_lookup_matches_last_update(ops in prop::collection::vec((0u64..64, any::<u16>()), 1..200)) {
        let mut b = Btb::default();
        let mut shadow = std::collections::HashMap::new();
        for (pc, tgt) in ops {
            b.update(pc, tgt as u64);
            shadow.insert(pc, tgt as u64);
        }
        // With <= 64 distinct pcs in a 2048-entry BTB there is no capacity
        // pressure: every lookup must return the last installed target.
        for (pc, tgt) in shadow {
            prop_assert_eq!(b.lookup(pc), Some(tgt));
        }
    }

    #[test]
    fn ras_matches_unbounded_stack_within_capacity(ops in prop::collection::vec(prop::option::of(any::<u32>()), 1..200)) {
        let mut ras = Ras::new(64);
        let mut shadow: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    ras.push(v as u64);
                    shadow.push(v as u64);
                    if shadow.len() > 64 {
                        shadow.remove(0); // RAS wraps, dropping the deepest
                    }
                }
                None => {
                    let expect = shadow.pop();
                    prop_assert_eq!(ras.pop(), expect);
                }
            }
        }
    }

    #[test]
    fn storesets_never_panic_and_dependences_resolve(
        ops in prop::collection::vec((0u64..32, 0u64..32, any::<bool>()), 1..300)
    ) {
        let mut ss = StoreSets::default();
        let mut seq = 0u64;
        for (load_pc, store_pc, violate) in ops {
            if violate {
                ss.train_violation(load_pc, store_pc + 100);
            }
            seq += 1;
            ss.rename_store(store_pc + 100, seq);
            let dep = ss.load_dependence(load_pc);
            if let Some(d) = dep {
                prop_assert!(d <= seq, "dependence on a future store");
            }
            ss.store_executed(store_pc + 100, seq);
        }
        // After all stores execute, no dependences linger.
        for pc in 0..32 {
            prop_assert_eq!(ss.load_dependence(pc), None);
        }
    }

    #[test]
    fn frontend_never_panics(ops in prop::collection::vec((0u64..4096, 0u8..6, any::<bool>(), 0u64..4096), 1..300)) {
        let mut fe = FrontEnd::default();
        for (pc, kind, taken, target) in ops {
            let kind = [
                ControlKind::Cond,
                ControlKind::DirectJump,
                ControlKind::Call,
                ControlKind::Return,
                ControlKind::IndirectJump,
                ControlKind::IndirectCall,
            ][kind as usize];
            let taken = taken || kind != ControlKind::Cond;
            let _ = fe.process(pc, kind, taken, target);
        }
        let s = fe.stats();
        prop_assert!(s.cond_wrong <= s.cond);
        prop_assert!(s.returns_wrong <= s.returns);
        prop_assert!(s.indirect_wrong <= s.indirect);
    }
}
