/// Branch target buffer geometry. Default: the paper's 2K-entry 4-way BTB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total entries (power of two).
    pub entries: usize,
    /// Associativity.
    pub assoc: usize,
}

impl Default for BtbConfig {
    fn default() -> BtbConfig {
        BtbConfig {
            entries: 2048,
            assoc: 4,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: u64,
    lru: u64,
}

/// A set-associative branch target buffer mapping branch pc to predicted
/// target. The timing simulator uses it for indirect jumps and calls (direct
/// targets are computed in the front end).
///
/// ```
/// use reno_uarch::Btb;
/// let mut b = Btb::default();
/// assert_eq!(b.lookup(0x40), None);
/// b.update(0x40, 0x99);
/// assert_eq!(b.lookup(0x40), Some(0x99));
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    cfg: BtbConfig,
    sets: usize,
    entries: Vec<BtbEntry>,
    stamp: u64,
}

impl Default for Btb {
    fn default() -> Btb {
        Btb::new(BtbConfig::default())
    }
}

impl Btb {
    /// Builds an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `assoc` or the set count is
    /// not a power of two.
    pub fn new(cfg: BtbConfig) -> Btb {
        let sets = cfg.entries / cfg.assoc;
        assert_eq!(sets * cfg.assoc, cfg.entries);
        assert!(sets.is_power_of_two());
        Btb {
            cfg,
            sets,
            entries: vec![BtbEntry::default(); cfg.entries],
            stamp: 0,
        }
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        (pc as usize) & (self.sets - 1)
    }

    /// Predicted target for the control instruction at `pc`, if cached.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.stamp += 1;
        let set = self.set_of(pc);
        let base = set * self.cfg.assoc;
        let stamp = self.stamp;
        self.entries[base..base + self.cfg.assoc]
            .iter_mut()
            .find(|e| e.valid && e.tag == pc)
            .map(|e| {
                e.lru = stamp;
                e.target
            })
    }

    /// Installs/refreshes the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.stamp += 1;
        let set = self.set_of(pc);
        let base = set * self.cfg.assoc;
        let ways = &mut self.entries[base..base + self.cfg.assoc];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == pc) {
            e.target = target;
            e.lru = self.stamp;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru + 1 } else { 0 })
            .expect("assoc > 0");
        *victim = BtbEntry {
            valid: true,
            tag: pc,
            target,
            lru: self.stamp,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_then_lookup() {
        let mut b = Btb::default();
        b.update(10, 200);
        assert_eq!(b.lookup(10), Some(200));
        b.update(10, 300);
        assert_eq!(b.lookup(10), Some(300));
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut b = Btb::new(BtbConfig {
            entries: 4,
            assoc: 2,
        }); // 2 sets
            // Set 0 holds pcs 0, 2, 4 (mod 2 == 0).
        b.update(0, 1);
        b.update(2, 1);
        b.lookup(0); // refresh 0
        b.update(4, 1); // evicts 2
        assert_eq!(b.lookup(0), Some(1));
        assert_eq!(b.lookup(2), None);
        assert_eq!(b.lookup(4), Some(1));
    }

    #[test]
    fn distinct_sets_do_not_collide() {
        let mut b = Btb::new(BtbConfig {
            entries: 4,
            assoc: 2,
        });
        b.update(1, 11);
        b.update(2, 22);
        assert_eq!(b.lookup(1), Some(11));
        assert_eq!(b.lookup(2), Some(22));
    }
}
