//! Store-sets memory dependence predictor (Chrysos & Emer, ISCA '98).
//!
//! The SSIT (store-set ID table) maps load and store pcs to a store-set id;
//! the LFST (last fetched store table) maps a store-set id to the most
//! recently renamed, still-in-flight store of that set. A load whose pc maps
//! to a set with an in-flight store must wait for that store to execute; all
//! other loads issue aggressively. When a memory-ordering violation squashes
//! the pipeline, the offending load and store pcs are assigned to the same
//! set ("training").

/// Identifier of a store set (an LFST index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StoreSetId(pub u16);

/// Geometry of the predictor. Default: the paper's 64-entry store sets with a
/// 4K-entry SSIT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreSetConfig {
    /// SSIT entries (power of two), indexed by pc.
    pub ssit_entries: usize,
    /// Number of store sets (LFST entries).
    pub sets: usize,
}

impl Default for StoreSetConfig {
    fn default() -> StoreSetConfig {
        StoreSetConfig {
            ssit_entries: 4096,
            sets: 64,
        }
    }
}

/// The predictor state.
///
/// ```
/// use reno_uarch::StoreSets;
/// let mut ss = StoreSets::default();
/// assert_eq!(ss.load_dependence(0x10), None, "untrained load is free");
/// ss.train_violation(0x10, 0x20);
/// ss.rename_store(0x20, 7);
/// assert_eq!(ss.load_dependence(0x10), Some(7), "now waits for store seq 7");
/// ss.store_executed(0x20, 7);
/// assert_eq!(ss.load_dependence(0x10), None);
/// ```
#[derive(Clone, Debug)]
pub struct StoreSets {
    cfg: StoreSetConfig,
    /// pc -> store set id (+1; 0 = invalid).
    ssit: Vec<u16>,
    /// set id -> in-flight store sequence number.
    lfst: Vec<Option<u64>>,
    next_set: u16,
    /// Violations trained.
    pub violations_trained: u64,
}

impl Default for StoreSets {
    fn default() -> StoreSets {
        StoreSets::new(StoreSetConfig::default())
    }
}

impl StoreSets {
    /// Builds an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if `ssit_entries` is not a power of two or `sets` is zero.
    pub fn new(cfg: StoreSetConfig) -> StoreSets {
        assert!(cfg.ssit_entries.is_power_of_two());
        assert!(cfg.sets > 0 && cfg.sets <= u16::MAX as usize);
        StoreSets {
            cfg,
            ssit: vec![0; cfg.ssit_entries],
            lfst: vec![None; cfg.sets],
            next_set: 0,
            violations_trained: 0,
        }
    }

    #[inline]
    fn ssit_index(&self, pc: u64) -> usize {
        (pc as usize) & (self.cfg.ssit_entries - 1)
    }

    fn set_of(&self, pc: u64) -> Option<StoreSetId> {
        let raw = self.ssit[self.ssit_index(pc)];
        (raw != 0).then(|| StoreSetId(raw - 1))
    }

    /// Called at rename for a load: if the load belongs to a store set with an
    /// in-flight store, returns that store's sequence number (the load must
    /// not issue before it executes).
    pub fn load_dependence(&self, pc: u64) -> Option<u64> {
        self.set_of(pc).and_then(|s| self.lfst[s.0 as usize])
    }

    /// Called at rename for a store: records it as the set's last fetched
    /// store. Returns the previous in-flight store of the set, if any (stores
    /// of a set execute in order in the original proposal; the simulator may
    /// use or ignore this).
    pub fn rename_store(&mut self, pc: u64, seq: u64) -> Option<u64> {
        let set = self.set_of(pc)?;
        let prev = self.lfst[set.0 as usize];
        self.lfst[set.0 as usize] = Some(seq);
        prev
    }

    /// Called when a store executes (its address is known) or retires:
    /// clears the LFST entry if it still names this store.
    pub fn store_executed(&mut self, pc: u64, seq: u64) {
        if let Some(set) = self.set_of(pc) {
            if self.lfst[set.0 as usize] == Some(seq) {
                self.lfst[set.0 as usize] = None;
            }
        }
    }

    /// Called when a squash removes in-flight stores: any LFST entry naming a
    /// store with sequence >= `from_seq` is cleared.
    pub fn squash_from(&mut self, from_seq: u64) {
        for e in &mut self.lfst {
            if matches!(e, Some(s) if *s >= from_seq) {
                *e = None;
            }
        }
    }

    /// Trains on a memory-ordering violation between `load_pc` and
    /// `store_pc`: both are placed in the same store set (Chrysos-Emer merge
    /// rule: reuse an existing set if either pc has one, preferring the
    /// smaller id; otherwise allocate round-robin).
    pub fn train_violation(&mut self, load_pc: u64, store_pc: u64) {
        self.violations_trained += 1;
        let ls = self.set_of(load_pc);
        let ss = self.set_of(store_pc);
        let set = match (ls, ss) {
            (Some(a), Some(b)) => StoreSetId(a.0.min(b.0)),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                let id = StoreSetId(self.next_set);
                self.next_set = (self.next_set + 1) % self.cfg.sets as u16;
                id
            }
        };
        let li = self.ssit_index(load_pc);
        let si = self.ssit_index(store_pc);
        self.ssit[li] = set.0 + 1;
        self.ssit[si] = set.0 + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_loads_are_unconstrained() {
        let mut ss = StoreSets::default();
        ss.rename_store(0x20, 1); // store has no set -> no effect
        assert_eq!(ss.load_dependence(0x10), None);
    }

    #[test]
    fn training_creates_dependence() {
        let mut ss = StoreSets::default();
        ss.train_violation(0x10, 0x20);
        ss.rename_store(0x20, 42);
        assert_eq!(ss.load_dependence(0x10), Some(42));
    }

    #[test]
    fn store_execution_clears_dependence() {
        let mut ss = StoreSets::default();
        ss.train_violation(0x10, 0x20);
        ss.rename_store(0x20, 42);
        ss.store_executed(0x20, 42);
        assert_eq!(ss.load_dependence(0x10), None);
    }

    #[test]
    fn stale_clear_is_ignored() {
        let mut ss = StoreSets::default();
        ss.train_violation(0x10, 0x20);
        ss.rename_store(0x20, 42);
        ss.rename_store(0x20, 43); // newer store of the same set
        ss.store_executed(0x20, 42); // old store executing must not clear 43
        assert_eq!(ss.load_dependence(0x10), Some(43));
    }

    #[test]
    fn squash_clears_young_stores_only() {
        let mut ss = StoreSets::default();
        ss.train_violation(0x10, 0x20);
        ss.train_violation(0x30, 0x40);
        ss.rename_store(0x20, 10);
        ss.rename_store(0x40, 50);
        ss.squash_from(20);
        assert_eq!(ss.load_dependence(0x10), Some(10), "older store survives");
        assert_eq!(ss.load_dependence(0x30), None, "younger store cleared");
    }

    #[test]
    fn merge_rule_unifies_sets() {
        let mut ss = StoreSets::default();
        ss.train_violation(0x10, 0x20); // set A
        ss.train_violation(0x30, 0x40); // set B
        ss.train_violation(0x10, 0x40); // merge: both -> min(A, B)
        ss.rename_store(0x40, 7);
        assert_eq!(ss.load_dependence(0x10), Some(7));
    }

    #[test]
    fn round_robin_allocation_wraps() {
        let mut ss = StoreSets::new(StoreSetConfig {
            ssit_entries: 4096,
            sets: 2,
        });
        ss.train_violation(0x1, 0x2);
        ss.train_violation(0x3, 0x4);
        ss.train_violation(0x5, 0x6); // reuses set 0
        ss.rename_store(0x2, 9);
        // pc 0x5 landed in set 0, same as 0x1/0x2.
        assert_eq!(ss.load_dependence(0x5), Some(9));
    }
}
