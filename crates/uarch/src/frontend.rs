use crate::{BpredConfig, Btb, BtbConfig, HybridPredictor, Ras};

/// The kind of control-flow instruction, as seen by the fetch engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControlKind {
    /// Conditional compare-to-zero branch.
    Cond,
    /// Direct unconditional jump (`br`).
    DirectJump,
    /// Direct call (`jal`) — pushes the RAS.
    Call,
    /// Return (`jr ra`) — pops the RAS.
    Return,
    /// Indirect jump through a register (not a return).
    IndirectJump,
    /// Indirect call (`jalr`) — BTB target, pushes the RAS.
    IndirectCall,
}

/// Prediction accuracy counters, per control kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontEndStats {
    /// Conditional branches fetched / mispredicted.
    pub cond: u64,
    pub cond_wrong: u64,
    /// Returns fetched / mispredicted.
    pub returns: u64,
    pub returns_wrong: u64,
    /// Indirect jumps+calls fetched / mispredicted.
    pub indirect: u64,
    pub indirect_wrong: u64,
}

impl FrontEndStats {
    /// Overall misprediction count.
    pub fn total_wrong(&self) -> u64 {
        self.cond_wrong + self.returns_wrong + self.indirect_wrong
    }

    /// Conditional-branch direction accuracy in [0, 1].
    pub fn cond_accuracy(&self) -> f64 {
        if self.cond == 0 {
            1.0
        } else {
            1.0 - self.cond_wrong as f64 / self.cond as f64
        }
    }
}

/// The fetch engine's prediction datapath: hybrid direction predictor, BTB
/// for indirect targets, and return address stack.
///
/// Trace-driven contract: [`FrontEnd::process`] is called once per fetched
/// control instruction with the oracle outcome (`taken`, `target`), trains
/// every structure, and reports whether fetch would have continued on the
/// correct path (`true`) or mispredicted (`false`).
#[derive(Clone, Debug, Default)]
pub struct FrontEnd {
    bpred: HybridPredictor,
    btb: Btb,
    ras: Ras,
    stats: FrontEndStats,
}

impl FrontEnd {
    /// Builds the paper's default front end (16Kb hybrid, 2K 4-way BTB,
    /// 32-entry RAS).
    pub fn new(bpred: BpredConfig, btb: BtbConfig, ras_entries: usize) -> FrontEnd {
        FrontEnd {
            bpred: HybridPredictor::new(bpred),
            btb: Btb::new(btb),
            ras: Ras::new(ras_entries),
            stats: FrontEndStats::default(),
        }
    }

    /// Accumulated accuracy statistics.
    pub fn stats(&self) -> &FrontEndStats {
        &self.stats
    }

    /// Zeroes the accuracy counters while keeping all predictor state
    /// (tables, history, RAS). Functional warming trains the front end
    /// through [`FrontEnd::process`] and then resets the counters so a
    /// measurement interval reports only its own predictions.
    pub fn reset_stats(&mut self) {
        self.stats = FrontEndStats::default();
    }

    /// Processes one fetched control instruction.
    ///
    /// * `pc` — instruction index of the control instruction
    /// * `kind` — decoded control kind
    /// * `taken` — oracle direction (always true for unconditional kinds)
    /// * `target` — oracle target (instruction index)
    ///
    /// Returns `true` if prediction was fully correct (direction *and*
    /// target), `false` on a misprediction that redirects fetch when the
    /// branch resolves.
    pub fn process(&mut self, pc: u64, kind: ControlKind, taken: bool, target: u64) -> bool {
        match kind {
            ControlKind::Cond => {
                self.stats.cond += 1;
                let pred = self.bpred.predict_and_update(pc, taken);
                let ok = pred == taken;
                self.stats.cond_wrong += u64::from(!ok);
                ok
            }
            ControlKind::DirectJump => true,
            ControlKind::Call => {
                self.ras.push(pc + 1);
                true
            }
            ControlKind::Return => {
                self.stats.returns += 1;
                let ok = self.ras.pop() == Some(target);
                self.stats.returns_wrong += u64::from(!ok);
                ok
            }
            ControlKind::IndirectJump | ControlKind::IndirectCall => {
                self.stats.indirect += 1;
                let ok = self.btb.lookup(pc) == Some(target);
                self.btb.update(pc, target);
                if kind == ControlKind::IndirectCall {
                    self.ras.push(pc + 1);
                }
                self.stats.indirect_wrong += u64::from(!ok);
                ok
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calls_and_returns_pair_up() {
        let mut fe = FrontEnd::default();
        assert!(fe.process(100, ControlKind::Call, true, 500));
        assert!(fe.process(510, ControlKind::Return, true, 101));
        assert_eq!(fe.stats().returns_wrong, 0);
    }

    #[test]
    fn mismatched_return_is_mispredicted() {
        let mut fe = FrontEnd::default();
        fe.process(100, ControlKind::Call, true, 500);
        assert!(!fe.process(510, ControlKind::Return, true, 999));
        assert_eq!(fe.stats().returns_wrong, 1);
    }

    #[test]
    fn empty_ras_mispredicts_return() {
        let mut fe = FrontEnd::default();
        assert!(!fe.process(510, ControlKind::Return, true, 101));
    }

    #[test]
    fn indirect_learns_target() {
        let mut fe = FrontEnd::default();
        assert!(
            !fe.process(7, ControlKind::IndirectJump, true, 42),
            "cold BTB misses"
        );
        assert!(
            fe.process(7, ControlKind::IndirectJump, true, 42),
            "second time hits"
        );
        assert!(
            !fe.process(7, ControlKind::IndirectJump, true, 43),
            "target change misses"
        );
    }

    #[test]
    fn direct_jumps_never_mispredict() {
        let mut fe = FrontEnd::default();
        assert!(fe.process(1, ControlKind::DirectJump, true, 1000));
        assert_eq!(fe.stats().total_wrong(), 0);
    }

    #[test]
    fn nested_calls_unwind_in_order() {
        let mut fe = FrontEnd::default();
        fe.process(10, ControlKind::Call, true, 100);
        fe.process(110, ControlKind::Call, true, 200);
        assert!(fe.process(210, ControlKind::Return, true, 111));
        assert!(fe.process(120, ControlKind::Return, true, 11));
    }

    #[test]
    fn cond_accuracy_tracks() {
        let mut fe = FrontEnd::default();
        for _ in 0..200 {
            fe.process(5, ControlKind::Cond, true, 50);
        }
        assert!(fe.stats().cond_accuracy() > 0.95);
    }
}
