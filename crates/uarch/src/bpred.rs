/// Configuration of the hybrid direction predictor.
///
/// The default is the paper's "16Kb hybrid": a 2K-entry bimodal table (4Kb of
/// 2-bit counters), a 4K-entry gshare table (8Kb) with 12 bits of global
/// history, and a 2K-entry chooser (4Kb) — 16Kb of state total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BpredConfig {
    /// Bimodal table entries (power of two).
    pub bimodal_entries: usize,
    /// Gshare table entries (power of two).
    pub gshare_entries: usize,
    /// Global history length in bits.
    pub history_bits: u32,
    /// Chooser table entries (power of two).
    pub chooser_entries: usize,
}

impl Default for BpredConfig {
    fn default() -> BpredConfig {
        BpredConfig {
            bimodal_entries: 2048,
            gshare_entries: 4096,
            history_bits: 12,
            chooser_entries: 2048,
        }
    }
}

#[inline]
fn counter_update(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// A bimodal + gshare hybrid with a per-pc chooser (McFarling style).
///
/// Trace-driven usage: the simulator calls [`HybridPredictor::predict_and_update`]
/// once per fetched conditional branch with the oracle outcome. Tables and
/// history are updated in fetch order along the correct path; wrong-path
/// pollution is not modelled (see DESIGN.md).
///
/// ```
/// use reno_uarch::HybridPredictor;
/// let mut p = HybridPredictor::default();
/// // A strongly biased branch becomes predictable after warmup.
/// for _ in 0..8 { p.predict_and_update(0x40, true); }
/// assert!(p.predict_and_update(0x40, true));
/// ```
#[derive(Clone, Debug)]
pub struct HybridPredictor {
    cfg: BpredConfig,
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>,
    history: u64,
}

impl Default for HybridPredictor {
    fn default() -> HybridPredictor {
        HybridPredictor::new(BpredConfig::default())
    }
}

impl HybridPredictor {
    /// Builds a predictor; counters start weakly not-taken / no preference.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two.
    pub fn new(cfg: BpredConfig) -> HybridPredictor {
        assert!(cfg.bimodal_entries.is_power_of_two());
        assert!(cfg.gshare_entries.is_power_of_two());
        assert!(cfg.chooser_entries.is_power_of_two());
        HybridPredictor {
            cfg,
            bimodal: vec![1; cfg.bimodal_entries],
            gshare: vec![1; cfg.gshare_entries],
            chooser: vec![2; cfg.chooser_entries], // slight gshare preference
            history: 0,
        }
    }

    /// Total predictor state in bits (each table entry is 2 bits).
    pub fn state_bits(&self) -> usize {
        2 * (self.cfg.bimodal_entries + self.cfg.gshare_entries + self.cfg.chooser_entries)
    }

    #[inline]
    fn gshare_index(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.cfg.history_bits) - 1);
        ((pc ^ h) as usize) & (self.cfg.gshare_entries - 1)
    }

    /// Predicts the branch at `pc`, then trains with the actual outcome and
    /// shifts it into the global history. Returns the prediction that the
    /// fetch stage acted on.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let bi = (pc as usize) & (self.cfg.bimodal_entries - 1);
        let gi = self.gshare_index(pc);
        let ci = (pc as usize) & (self.cfg.chooser_entries - 1);

        let bim_pred = self.bimodal[bi] >= 2;
        let gsh_pred = self.gshare[gi] >= 2;
        let use_gshare = self.chooser[ci] >= 2;
        let pred = if use_gshare { gsh_pred } else { bim_pred };

        // Train the chooser toward whichever component was right.
        if bim_pred != gsh_pred {
            counter_update(&mut self.chooser[ci], gsh_pred == taken);
        }
        counter_update(&mut self.bimodal[bi], taken);
        counter_update(&mut self.gshare[gi], taken);
        self.history = (self.history << 1) | taken as u64;

        pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_16kb() {
        let p = HybridPredictor::default();
        assert_eq!(p.state_bits(), 16 * 1024);
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = HybridPredictor::default();
        let mut correct = 0;
        for i in 0..100 {
            if p.predict_and_update(0x1234, true) {
                correct += i64::from(i >= 10); // count after warmup
            }
        }
        assert!(
            correct >= 85,
            "biased branch should be near-perfect, got {correct}"
        );
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = HybridPredictor::default();
        let mut correct = 0;
        let mut t = false;
        for i in 0..400 {
            t = !t;
            if p.predict_and_update(0x77, t) == t && i >= 100 {
                correct += 1;
            }
        }
        assert!(
            correct >= 280,
            "gshare should capture alternation, got {correct}/300"
        );
    }

    #[test]
    fn different_pcs_do_not_destructively_interfere_when_aliased_apart() {
        let mut p = HybridPredictor::default();
        for _ in 0..50 {
            p.predict_and_update(0x100, true);
            p.predict_and_update(0x200, false);
        }
        assert!(p.predict_and_update(0x100, true));
        assert!(!p.predict_and_update(0x200, false));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = HybridPredictor::new(BpredConfig {
            bimodal_entries: 1000,
            ..Default::default()
        });
    }
}
