/// A fixed-capacity circular return address stack (default 32 entries, per
/// the paper's §4.1).
///
/// Overflow wraps (oldest entry is overwritten); underflow returns `None`.
///
/// ```
/// use reno_uarch::Ras;
/// let mut r = Ras::new(32);
/// r.push(101);
/// r.push(202);
/// assert_eq!(r.pop(), Some(202));
/// assert_eq!(r.pop(), Some(101));
/// assert_eq!(r.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct Ras {
    slots: Vec<u64>,
    top: usize,
    depth: usize,
}

impl Default for Ras {
    fn default() -> Ras {
        Ras::new(32)
    }
}

impl Ras {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ras {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        Ras {
            slots: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Number of live entries (saturates at capacity).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pushes a return address (a call was fetched).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.slots.len();
        self.slots[self.top] = addr;
        self.depth = (self.depth + 1).min(self.slots.len());
    }

    /// Pops the predicted return address (a return was fetched).
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let v = self.slots[self.top];
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.depth -= 1;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Ras::new(4);
        for i in 1..=3 {
            r.push(i);
        }
        assert_eq!(r.depth(), 3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_discards_deepest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        // Entry 1 was overwritten; the stale slot now yields a wrong (but
        // well-defined) value or None depending on depth bookkeeping.
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn deep_call_chains_wrap_gracefully() {
        let mut r = Ras::new(8);
        for i in 0..100 {
            r.push(i);
        }
        assert_eq!(r.depth(), 8);
        for i in (92..100).rev() {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Ras::new(0);
    }
}
