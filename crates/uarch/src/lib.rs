//! # reno-uarch — front-end prediction structures and the store-sets predictor
//!
//! The paper's fetch engine (§4.1) uses a 16Kb hybrid branch predictor, a
//! 2K-entry 4-way set-associative BTB and a 32-entry return address stack;
//! loads are scheduled aggressively with a 64-entry store-sets memory
//! dependence predictor (Chrysos & Emer). This crate implements those four
//! structures plus a [`FrontEnd`] facade that the timing simulator drives
//! once per fetched control instruction:
//!
//! * [`HybridPredictor`] — a chooser over bimodal and gshare components;
//!   conditional branches are predicted and trained in one call, matching
//!   the trace-driven simulator's resolve-at-execute simplification;
//! * [`Btb`] — tagged, set-associative target storage for indirect jumps
//!   and calls (direct targets are decoded, not predicted);
//! * [`Ras`] — a wrapping return-address stack: calls push, returns pop,
//!   and overflow silently drops the deepest frame, exactly like hardware;
//! * [`StoreSets`] — load/store dependence sets with the paper's
//!   rename-time interface: [`StoreSets::rename_store`] registers an
//!   in-flight store, [`StoreSets::load_dependence`] tells the scheduler
//!   which store sequence number a load must wait for, and ordering
//!   violations call [`StoreSets::train_violation`].
//!
//! The facade reports, per control instruction, whether fetch would have
//! continued on the correct path; the simulator charges the redirect
//! penalty when it returns `false`.
//!
//! ```
//! use reno_uarch::{ControlKind, FrontEnd};
//!
//! let mut fe = FrontEnd::default();
//! // Call then matching return: the RAS predicts the return address.
//! assert!(fe.process(100, ControlKind::Call, true, 500));
//! assert!(fe.process(510, ControlKind::Return, true, 101));
//! // A cold indirect jump misses the BTB, then trains on the target.
//! assert!(!fe.process(7, ControlKind::IndirectJump, true, 42));
//! assert!(fe.process(7, ControlKind::IndirectJump, true, 42));
//! assert_eq!(fe.stats().total_wrong(), 1);
//! ```

mod bpred;
mod btb;
mod frontend;
mod ras;
mod storesets;

pub use bpred::{BpredConfig, HybridPredictor};
pub use btb::{Btb, BtbConfig};
pub use frontend::{ControlKind, FrontEnd, FrontEndStats};
pub use ras::Ras;
pub use storesets::{StoreSetConfig, StoreSetId, StoreSets};
