//! # reno-uarch — front-end prediction structures and the store-sets predictor
//!
//! The paper's fetch engine (§4.1) uses a 16Kb hybrid branch predictor, a
//! 2K-entry 4-way set-associative BTB and a 32-entry return address stack;
//! loads are scheduled aggressively with a 64-entry store-sets memory
//! dependence predictor (Chrysos & Emer). This crate implements those four
//! structures plus a [`FrontEnd`] facade that the timing simulator drives
//! once per fetched control instruction.

mod bpred;
mod btb;
mod frontend;
mod ras;
mod storesets;

pub use bpred::{BpredConfig, HybridPredictor};
pub use btb::{Btb, BtbConfig};
pub use frontend::{ControlKind, FrontEnd, FrontEndStats};
pub use ras::Ras;
pub use storesets::{StoreSetConfig, StoreSetId, StoreSets};
