//! Pinned cycle counts for representative kernels.
//!
//! The event-driven scheduler work (and any future host-side optimization)
//! must not move timing by even one cycle: "RENO changes timing, never
//! results" extends to "host optimization changes nothing at all". These
//! tests pin exact `(cycles, retired)` pairs for four kernels under the
//! baseline and full-RENO configurations; any accidental timing drift fails
//! loudly and prints the full observed table for comparison.
//!
//! If a *deliberate* timing-model change lands (a new latency, a different
//! structural hazard), re-pin by running with `RENO_PRINT_PINS=1`:
//!
//! ```text
//! RENO_PRINT_PINS=1 cargo test -p reno-sim --test pinned_timing -- --nocapture
//! ```

use reno_core::RenoConfig;
use reno_isa::{Asm, Program, Reg};
use reno_sim::{MachineConfig, Simulator};

/// Fold-heavy dependent loop: RENO_CF's bread and butter.
fn fold_loop() -> Program {
    let mut a = Asm::named("fold");
    a.li(Reg::T0, 3000);
    a.li(Reg::T1, 0);
    a.label("loop");
    a.add(Reg::T1, Reg::T1, Reg::T0);
    a.addi(Reg::T1, Reg::T1, 5);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.out(Reg::T1);
    a.halt();
    a.assemble().unwrap()
}

/// Store-forwarding kernel: full-width forwards plus a partial-width
/// (store-smaller-than-load) replay every iteration.
fn forward_kernel() -> Program {
    let mut a = Asm::named("fwd");
    let buf = a.zeros("buf", 256);
    a.li(Reg::S0, buf as i64);
    a.li(Reg::T0, 1500);
    a.li(Reg::V0, 0);
    a.label("loop");
    a.st(Reg::T0, Reg::S0, 0);
    a.ld(Reg::T1, Reg::S0, 0); // full forward
    a.sth(Reg::T0, Reg::S0, 10); // narrow store...
    a.ld(Reg::T2, Reg::S0, 8); // ...partially under a wide load: replay
    a.add(Reg::V0, Reg::V0, Reg::T1);
    a.add(Reg::V0, Reg::V0, Reg::T2);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.out(Reg::V0);
    a.halt();
    a.assemble().unwrap()
}

/// The mispredict storm from `tests/recovery.rs`: LCG-driven branches the
/// predictor cannot learn, interleaved with memory traffic.
fn storm_kernel() -> Program {
    let mut a = Asm::named("storm");
    let buf = a.zeros("buf", 64 * 8);
    a.li(Reg::S0, buf as i64);
    a.li(Reg::T0, 400);
    a.li(Reg::T1, 88172645);
    a.li(Reg::V0, 0);
    a.label("loop");
    a.li(Reg::T2, 25214903 % 30000);
    a.mul(Reg::T1, Reg::T1, Reg::T2);
    a.addi(Reg::T1, Reg::T1, 11);
    a.srli(Reg::T3, Reg::T1, 19);
    a.andi(Reg::T3, Reg::T3, 1);
    a.beqz(Reg::T3, "even");
    a.addi(Reg::V0, Reg::V0, 3);
    a.st(Reg::V0, Reg::S0, 8);
    a.br("join");
    a.label("even");
    a.addi(Reg::V0, Reg::V0, 7);
    a.ld(Reg::T4, Reg::S0, 8);
    a.add(Reg::V0, Reg::V0, Reg::T4);
    a.label("join");
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.out(Reg::V0);
    a.halt();
    a.assemble().unwrap()
}

/// Pointer-chasing loads with an L2-and-beyond working set: exercises the
/// memory hierarchy's miss timing, MSHR merging, and the far-wakeup path.
fn chase_kernel() -> Program {
    let mut a = Asm::named("chase");
    // A 64KB ring of pointers, each pointing 4099*8 bytes ahead (mod size).
    let n = 8192usize;
    let mut ws = vec![0u64; n];
    let base = 0x0001_0000u64; // data segment base (see reno-isa docs)
    for i in 0..n {
        ws[i] = base + (((i + 4099) % n) as u64) * 8;
    }
    let buf = a.words("ring", &ws);
    a.li(Reg::S0, buf as i64);
    a.li(Reg::T0, 4000);
    a.li(Reg::V0, 0);
    a.label("loop");
    a.ld(Reg::S0, Reg::S0, 0);
    a.add(Reg::V0, Reg::V0, Reg::S0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.out(Reg::V0);
    a.halt();
    a.assemble().unwrap()
}

/// (kernel, config, cycles, retired) — the pinned table.
const PINS: &[(&str, &str, u64, u64)] = &[
    ("fold", "base", 6159, 12004),
    ("fold", "reno", 6157, 12004),
    ("fwd", "base", 10766, 12005),
    ("fwd", "reno", 19751, 12005),
    ("storm", "base", 4777, 4407),
    ("storm", "reno", 4776, 4407),
    ("chase", "base", 12518, 16005),
    ("chase", "reno", 12518, 16005),
];

#[test]
fn pinned_cycle_counts() {
    let kernels: [(&str, Program); 4] = [
        ("fold", fold_loop()),
        ("fwd", forward_kernel()),
        ("storm", storm_kernel()),
        ("chase", chase_kernel()),
    ];
    let mut observed = Vec::new();
    for (kname, p) in &kernels {
        for (cname, cfg) in [
            ("base", RenoConfig::baseline()),
            ("reno", RenoConfig::reno()),
        ] {
            let r = Simulator::new(p, MachineConfig::four_wide(cfg)).run(1 << 26);
            assert!(r.halted, "{kname}/{cname} halts");
            observed.push((*kname, cname, r.cycles, r.retired));
        }
    }
    if std::env::var("RENO_PRINT_PINS").is_ok() {
        for (k, c, cy, re) in &observed {
            println!("    (\"{k}\", \"{c}\", {cy}, {re}),");
        }
        return;
    }
    let table: Vec<String> = observed
        .iter()
        .map(|(k, c, cy, re)| format!("    (\"{k}\", \"{c}\", {cy}, {re}),"))
        .collect();
    for ((k, c, cy, re), pin) in observed.iter().zip(PINS) {
        assert_eq!(
            (*k, *c, *cy, *re),
            *pin,
            "timing drift detected; observed table:\n{}",
            table.join("\n")
        );
    }
}
