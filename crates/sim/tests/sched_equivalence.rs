//! Differential property test for the event-driven scheduler.
//!
//! The event-driven scheduler (exec calendar wheel + wakeup wheel + ready
//! list + per-register waiter lists) must be *cycle-for-cycle identical* to
//! the naive whole-ROB polling scheduler it replaced. Random programs —
//! exercising folds, multiplies, partial-width store forwarding, pointer
//! aliasing (misintegrations), memory-ordering violations and data-dependent
//! branches — run through both schedulers under several machine shapes, and
//! every observable of the run must match exactly.

use proptest::prelude::*;
use reno_core::RenoConfig;
use reno_isa::{Asm, Program, Reg};
use reno_sim::{MachineConfig, SimResult, Simulator};

/// Builds a random-but-terminating program from a byte recipe. Every byte
/// appends one loop-body instruction chosen from a pool that covers the
/// scheduler's interesting paths (ALU chains, multiplies, loads, stores,
/// partial-width overlaps, an aliased pointer store, and skip branches).
fn gen_program(body: &[u8], iters: u8) -> Program {
    let mut a = Asm::named("equiv");
    let buf = a.zeros("buf", 512);
    // `ptr` holds the address of buf[64..], creating a name-invisible alias.
    let ptr = a.words("ptr", &[buf + 64]);
    a.li(Reg::S0, buf as i64);
    a.li(Reg::S1, ptr as i64);
    a.li(Reg::T0, i64::from(iters % 24) + 2);
    a.li(Reg::T1, 0x1234_5678);
    a.li(Reg::T2, 7);
    a.li(Reg::T3, 3);
    a.label("loop");
    for (i, &b) in body.iter().enumerate() {
        let disp = i16::from(b >> 4) * 8; // 0..=120, 8-aligned inside buf
        match b % 13 {
            0 => {
                a.add(Reg::T1, Reg::T1, Reg::T2);
            }
            1 => {
                a.addi(Reg::T2, Reg::T2, i16::from(b) - 128);
            }
            2 => {
                a.mul(Reg::T3, Reg::T3, Reg::T2);
            }
            3 => {
                a.slli(Reg::T2, Reg::T1, i16::from(b % 5));
            }
            4 => {
                a.mov(Reg::T4, Reg::T1);
            }
            5 => {
                a.ld(Reg::T5, Reg::S0, disp);
                a.add(Reg::T1, Reg::T1, Reg::T5);
            }
            6 => {
                a.st(Reg::T1, Reg::S0, disp);
            }
            7 => {
                // Partial-width overlap: a narrow store under a wide load.
                a.sth(Reg::T2, Reg::S0, disp + 2);
                a.ld(Reg::T6, Reg::S0, disp);
                a.add(Reg::T1, Reg::T1, Reg::T6);
            }
            8 => {
                // Aliased store through a loaded pointer (IT cannot see it),
                // then a reload: provokes misintegrations and violations.
                a.ld(Reg::T4, Reg::S1, 0);
                a.st(Reg::T2, Reg::T4, 0);
                a.ld(Reg::T5, Reg::S0, 64);
                a.add(Reg::T1, Reg::T1, Reg::T5);
            }
            9 => {
                // Data-dependent skip branch (LCG parity: mispredicts).
                let skip = format!("sk{i}");
                a.andi(Reg::T6, Reg::T1, 1);
                a.beqz(Reg::T6, &skip);
                a.addi(Reg::T1, Reg::T1, 13);
                a.label(&skip);
            }
            10 => {
                a.ldbu(Reg::T5, Reg::S0, disp + 1);
                a.add(Reg::T3, Reg::T3, Reg::T5);
            }
            11 => {
                a.stb(Reg::T3, Reg::S0, disp + 5);
            }
            _ => {
                a.xor(Reg::T1, Reg::T1, Reg::T3);
            }
        }
    }
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.out(Reg::T1);
    a.out(Reg::T3);
    a.halt();
    a.assemble().expect("generated program assembles")
}

fn assert_equal(fast: &SimResult, naive: &SimResult, what: &str) {
    assert_eq!(fast.cycles, naive.cycles, "cycles [{what}]");
    assert_eq!(fast.retired, naive.retired, "retired [{what}]");
    assert_eq!(fast.checksum, naive.checksum, "checksum [{what}]");
    assert_eq!(fast.digest, naive.digest, "digest [{what}]");
    assert_eq!(fast.stats, naive.stats, "SimStats [{what}]");
    assert_eq!(fast.reno, naive.reno, "RenoStats [{what}]");
    assert_eq!(fast.it, naive.it, "ItStats [{what}]");
    assert_eq!(fast.frontend, naive.frontend, "FrontEndStats [{what}]");
    assert_eq!(fast.caches, naive.caches, "CacheStats [{what}]");
    assert_eq!(fast.halted, naive.halted, "halted [{what}]");
}

fn machines() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("4w-base", MachineConfig::four_wide(RenoConfig::baseline())),
        ("4w-reno", MachineConfig::four_wide(RenoConfig::reno())),
        (
            "6w-reno-fi",
            MachineConfig::six_wide(RenoConfig::reno_full_integration()),
        ),
        (
            "4w-reno-2c-p64",
            MachineConfig::four_wide(RenoConfig::reno())
                .with_sched_loop(2)
                .with_pregs(64),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn event_driven_scheduler_is_cycle_exact(
        body in prop::collection::vec(any::<u8>(), 1..40),
        iters in any::<u8>(),
    ) {
        let p = gen_program(&body, iters);
        for (name, m) in machines() {
            let fast = Simulator::new(&p, m.clone()).run(1 << 22);
            let naive = Simulator::new(&p, m.with_naive_sched()).run(1 << 22);
            assert_equal(&fast, &naive, name);
        }
    }
}

/// A deterministic directed complement to the random cases: the recipe is
/// chosen to hit every instruction class in one program.
#[test]
fn directed_all_classes_equivalence() {
    let body: Vec<u8> = (0u8..=255).step_by(3).collect();
    let p = gen_program(&body, 17);
    for (name, m) in machines() {
        let fast = Simulator::new(&p, m.clone()).run(1 << 24);
        let naive = Simulator::new(&p, m.with_naive_sched()).run(1 << 24);
        assert_equal(&fast, &naive, name);
    }
}
