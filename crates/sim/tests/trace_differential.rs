//! Tracing must be *invisible* and *truthful*.
//!
//! Invisible: enabling `MachineConfig::trace` may not move any observable of
//! a run — cycles, retired count, every counter, digests — by even one bit.
//! (The complementary direction, that a build with tracing compiled in but
//! *off* matches the historical goldens, is pinned by `pinned_timing` and
//! the alloctrack steady-state suite.)
//!
//! Truthful: the recorded event stream must agree exactly with the
//! simulator's own counters — one retire event per retired instruction at a
//! cycle the run actually reached, one issue event per `SimStats::issued`,
//! one squash event per `SimStats::squashed`, and rename outcomes that add
//! up to the RENO elimination statistics.

use proptest::prelude::*;
use reno_core::RenoConfig;
use reno_isa::{Asm, Program, Reg};
use reno_sim::{MachineConfig, SimResult, Simulator};
use reno_trace::{
    chrome_trace_json, validate_json, BranchClass, CacheLevel, EventKind, RenameOutcome,
    SquashCause,
};

/// Same recipe as `sched_equivalence`: a random-but-terminating loop over an
/// instruction pool that exercises folds, multiplies, partial-width
/// forwarding, aliased pointer stores (misintegrations + violations) and
/// data-dependent branches.
fn gen_program(body: &[u8], iters: u8) -> Program {
    let mut a = Asm::named("tracegen");
    let buf = a.zeros("buf", 512);
    let ptr = a.words("ptr", &[buf + 64]);
    a.li(Reg::S0, buf as i64);
    a.li(Reg::S1, ptr as i64);
    a.li(Reg::T0, i64::from(iters % 24) + 2);
    a.li(Reg::T1, 0x1234_5678);
    a.li(Reg::T2, 7);
    a.li(Reg::T3, 3);
    a.label("loop");
    for (i, &b) in body.iter().enumerate() {
        let disp = i16::from(b >> 4) * 8;
        match b % 13 {
            0 => {
                a.add(Reg::T1, Reg::T1, Reg::T2);
            }
            1 => {
                a.addi(Reg::T2, Reg::T2, i16::from(b) - 128);
            }
            2 => {
                a.mul(Reg::T3, Reg::T3, Reg::T2);
            }
            3 => {
                a.slli(Reg::T2, Reg::T1, i16::from(b % 5));
            }
            4 => {
                a.mov(Reg::T4, Reg::T1);
            }
            5 => {
                a.ld(Reg::T5, Reg::S0, disp);
                a.add(Reg::T1, Reg::T1, Reg::T5);
            }
            6 => {
                a.st(Reg::T1, Reg::S0, disp);
            }
            7 => {
                a.sth(Reg::T2, Reg::S0, disp + 2);
                a.ld(Reg::T6, Reg::S0, disp);
                a.add(Reg::T1, Reg::T1, Reg::T6);
            }
            8 => {
                a.ld(Reg::T4, Reg::S1, 0);
                a.st(Reg::T2, Reg::T4, 0);
                a.ld(Reg::T5, Reg::S0, 64);
                a.add(Reg::T1, Reg::T1, Reg::T5);
            }
            9 => {
                let skip = format!("sk{i}");
                a.andi(Reg::T6, Reg::T1, 1);
                a.beqz(Reg::T6, &skip);
                a.addi(Reg::T1, Reg::T1, 13);
                a.label(&skip);
            }
            10 => {
                a.ldbu(Reg::T5, Reg::S0, disp + 1);
                a.add(Reg::T3, Reg::T3, Reg::T5);
            }
            11 => {
                a.stb(Reg::T3, Reg::S0, disp + 5);
            }
            _ => {
                a.xor(Reg::T1, Reg::T1, Reg::T3);
            }
        }
    }
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.out(Reg::T1);
    a.out(Reg::T3);
    a.halt();
    a.assemble().expect("generated program assembles")
}

fn machines() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("4w-base", MachineConfig::four_wide(RenoConfig::baseline())),
        ("4w-reno", MachineConfig::four_wide(RenoConfig::reno())),
        (
            "6w-reno-fi",
            MachineConfig::six_wide(RenoConfig::reno_full_integration()),
        ),
    ]
}

/// Every observable of the run must be independent of tracing.
fn assert_invisible(off: &SimResult, on: &SimResult, what: &str) {
    assert_eq!(off.cycles, on.cycles, "cycles [{what}]");
    assert_eq!(off.retired, on.retired, "retired [{what}]");
    assert_eq!(off.stats, on.stats, "SimStats [{what}]");
    assert_eq!(off.reno, on.reno, "RenoStats [{what}]");
    assert_eq!(off.it, on.it, "ItStats [{what}]");
    assert_eq!(off.frontend, on.frontend, "FrontEndStats [{what}]");
    assert_eq!(off.caches, on.caches, "CacheStats [{what}]");
    assert_eq!(off.hier, on.hier, "HierarchyStats [{what}]");
    assert_eq!(off.checksum, on.checksum, "checksum [{what}]");
    assert_eq!(off.digest, on.digest, "digest [{what}]");
    assert_eq!(off.halted, on.halted, "halted [{what}]");
    assert!(off.trace.is_none(), "no trace recorded when off [{what}]");
    assert!(on.trace.is_some(), "trace recorded when on [{what}]");
}

/// The event stream must agree with the simulator's own counters.
fn assert_truthful(r: &SimResult, what: &str) {
    let t = r.trace.as_ref().expect("traced run");
    assert_eq!(t.retire_count(), r.retired, "retire events [{what}]");
    assert_eq!(t.issue_count(), r.stats.issued, "issue events [{what}]");
    assert_eq!(t.squash_count(), r.stats.squashed, "squash events [{what}]");

    // Retire cycles are in nondecreasing order and within the run.
    let mut last = 0u64;
    for e in t.retires() {
        assert!(e.cycle >= last, "retirement is in program order [{what}]");
        // The final halt retires at `cycle == cycles`: the run loop stops
        // before that cycle's increment, so `<=`, not `<`.
        assert!(e.cycle <= r.cycles, "retire cycle within the run [{what}]");
        last = e.cycle;
    }

    // One occupancy sample per simulated cycle, in order.
    assert_eq!(t.counters.len() as u64, r.cycles, "samples [{what}]");
    for (i, s) in t.counters.iter().enumerate() {
        assert_eq!(s.cycle, i as u64, "sample cycles are dense [{what}]");
    }

    // Rename outcomes add up to the RENO elimination statistics. Squashed
    // instructions are renamed again after refetch, so rename events count
    // every attempt — exactly like the cumulative RenoStats counters.
    let mut elim = 0u64;
    for e in &t.events {
        if let EventKind::Rename { outcome } = e.kind {
            if outcome != RenameOutcome::Issued {
                elim += 1;
            }
        }
    }
    assert_eq!(elim, r.reno.eliminated(), "elimination events [{what}]");

    // Memory track: per-level access/hit/writeback events reconcile with
    // the caches' own counters, probe for probe.
    let (l1i, l1d, l2) = r.caches;
    for (level, s) in [
        (CacheLevel::L1I, l1i),
        (CacheLevel::L1D, l1d),
        (CacheLevel::L2, l2),
    ] {
        assert_eq!(
            t.cache_accesses(level),
            s.accesses,
            "{level:?} access events [{what}]"
        );
        assert_eq!(t.cache_hits(level), s.hits, "{level:?} hit events [{what}]");
        assert_eq!(
            t.cache_writebacks(level),
            s.writebacks,
            "{level:?} writeback events [{what}]"
        );
    }

    // MSHR lifecycle: one alloc per memory access, one merge per recorded
    // merge, and — after the end-of-run flush — a retire for every alloc.
    // Stall and bus-queue events carry durations that exactly partition
    // the hierarchy's queue-cycle counter.
    assert_eq!(
        t.mshr_alloc_count(),
        r.hier.mem_accesses,
        "MSHR alloc events [{what}]"
    );
    assert_eq!(
        t.mshr_merge_count(),
        r.hier.merges,
        "MSHR merge events [{what}]"
    );
    assert_eq!(
        t.mshr_retire_count(),
        t.mshr_alloc_count(),
        "every MSHR alloc retires [{what}]"
    );
    assert_eq!(
        t.mshr_stall_cycles() + t.bus_queue_cycles(),
        r.hier.queue_cycles,
        "stall + bus cycles partition queue_cycles [{what}]"
    );

    // Predictor track: one predict event per fetched branch of each class,
    // wrong exactly as often as the front end says, and every resolution
    // event belongs to a genuinely mispredicted branch (a mispredict whose
    // squash wins the race never executes, so resolve <= wrong).
    let f = r.frontend;
    for (class, fetched, wrong) in [
        (BranchClass::Cond, f.cond, f.cond_wrong),
        (BranchClass::Return, f.returns, f.returns_wrong),
        (BranchClass::Indirect, f.indirect, f.indirect_wrong),
    ] {
        assert_eq!(
            t.predict_count(class),
            fetched,
            "{class:?} predict events [{what}]"
        );
        assert_eq!(
            t.mispredict_count(class),
            wrong,
            "{class:?} mispredict events [{what}]"
        );
    }
    assert!(
        t.resolve_count() <= f.total_wrong(),
        "resolves ({}) within mispredicts ({}) [{what}]",
        t.resolve_count(),
        f.total_wrong()
    );
}

#[test]
fn directed_all_classes_trace_differential() {
    let body: Vec<u8> = (0u8..=255).step_by(3).collect();
    let p = gen_program(&body, 17);
    let mut squashes = (0u64, 0u64);
    for (name, m) in machines() {
        let off = Simulator::new(&p, m.clone()).run(1 << 24);
        let on = Simulator::new(&p, m.with_trace()).run(1 << 24);
        assert_invisible(&off, &on, name);
        assert_truthful(&on, name);
        let t = on.trace.as_ref().unwrap();
        for e in &t.events {
            if let EventKind::Squash { cause } = e.kind {
                match cause {
                    SquashCause::MemOrder => squashes.0 += 1,
                    SquashCause::Misintegration => squashes.1 += 1,
                }
            }
        }
    }
    // The aliased-pointer recipe provokes both squash causes somewhere
    // across the machine sweep; the cause labels must reach the trace.
    assert!(squashes.0 > 0, "mem-order squashes traced: {squashes:?}");
    assert!(
        squashes.1 > 0,
        "misintegration squashes traced: {squashes:?}"
    );
}

#[test]
fn traced_run_exports_valid_chrome_json() {
    let body: Vec<u8> = (0u8..=120).step_by(5).collect();
    let p = gen_program(&body, 5);
    let r = Simulator::new(
        &p,
        MachineConfig::four_wide(RenoConfig::reno()).with_trace(),
    )
    .run(1 << 24);
    let t = r.trace.as_ref().expect("traced");
    let json = chrome_trace_json(t);
    validate_json(&json).expect("export is syntactically valid JSON");
    assert!(json.contains("\"name\":\"IPC\""));
    assert!(json.contains("\"outcome\":\"const-fold\""));
    // The memory/predictor tracks ride along: named threads, cold-start
    // misses as instants, MSHR lifecycle, and per-level activity counters.
    assert!(!t.sys.is_empty(), "system-track events recorded");
    assert!(json.contains("\"args\":{\"name\":\"memory\"}"));
    assert!(json.contains("\"args\":{\"name\":\"predictor\"}"));
    assert!(json.contains("\"name\":\"L1I miss\""));
    assert!(json.contains("\"name\":\"MSHR alloc\""));
    assert!(json.contains("\"name\":\"L1I activity\""));
    assert_eq!(
        json.matches("\"end\":\"retire\"").count() as u64,
        r.retired,
        "one retired span per retired instruction"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tracing_is_invisible_and_truthful(
        body in prop::collection::vec(any::<u8>(), 1..32),
        iters in any::<u8>(),
    ) {
        let p = gen_program(&body, iters);
        for (name, m) in machines() {
            let off = Simulator::new(&p, m.clone()).run(1 << 22);
            let on = Simulator::new(&p, m.with_trace()).run(1 << 22);
            assert_invisible(&off, &on, name);
            assert_truthful(&on, name);
        }
    }
}
