//! Differential property test for the block-batched oracle feed.
//!
//! The batched feed (`Oracle::refill` prefilling the sequence-indexed
//! `DynInst`/`RenameClass` rings a decoded block at a time) must be
//! **cycle-for-cycle and counter-for-counter identical** to the
//! per-instruction `Oracle::next` feed it replaces. Random programs —
//! exercising folds, multiplies, partial-width store forwarding, pointer
//! aliasing (misintegrations), memory-ordering violations, squash replays
//! and data-dependent branches — run through both feeds under several
//! machine shapes, and every observable of the run must match exactly.
//!
//! The per-instruction path is kept behind
//! [`MachineConfig::with_per_inst_feed`] (or `RENO_FEED=perinst`) as this
//! suite's baseline, like `naive_sched` for the scheduler.

use proptest::prelude::*;
use reno_core::RenoConfig;
use reno_isa::{Asm, Program, Reg};
use reno_sim::{MachineConfig, SimResult, Simulator};

/// Builds a random-but-terminating program from a byte recipe (same pool as
/// the scheduler-equivalence suite: ALU chains, loads/stores with
/// partial-width overlaps, an aliased pointer store, and skip branches).
fn gen_program(body: &[u8], iters: u8) -> Program {
    let mut a = Asm::named("feedequiv");
    let buf = a.zeros("buf", 512);
    let ptr = a.words("ptr", &[buf + 64]);
    a.li(Reg::S0, buf as i64);
    a.li(Reg::S1, ptr as i64);
    a.li(Reg::T0, i64::from(iters % 24) + 2);
    a.li(Reg::T1, 0x1234_5678);
    a.li(Reg::T2, 7);
    a.li(Reg::T3, 3);
    a.label("loop");
    for (i, &b) in body.iter().enumerate() {
        let disp = i16::from(b >> 4) * 8;
        match b % 12 {
            0 => {
                a.add(Reg::T1, Reg::T1, Reg::T2);
            }
            1 => {
                a.addi(Reg::T2, Reg::T2, i16::from(b) - 128);
            }
            2 => {
                a.mul(Reg::T3, Reg::T3, Reg::T2);
            }
            3 => {
                a.mov(Reg::T4, Reg::T1);
            }
            4 => {
                a.ld(Reg::T5, Reg::S0, disp);
                a.add(Reg::T1, Reg::T1, Reg::T5);
            }
            5 => {
                a.st(Reg::T1, Reg::S0, disp);
            }
            6 => {
                // Partial-width overlap: a narrow store under a wide load.
                a.sth(Reg::T2, Reg::S0, disp + 2);
                a.ld(Reg::T6, Reg::S0, disp);
                a.add(Reg::T1, Reg::T1, Reg::T6);
            }
            7 => {
                // Aliased store through a loaded pointer (IT cannot see it),
                // then a reload: provokes misintegrations and violations —
                // i.e. squash replays re-reading the prefilled rings.
                a.ld(Reg::T4, Reg::S1, 0);
                a.st(Reg::T2, Reg::T4, 0);
                a.ld(Reg::T5, Reg::S0, 64);
                a.add(Reg::T1, Reg::T1, Reg::T5);
            }
            8 => {
                // Data-dependent skip branch (LCG parity: mispredicts).
                let skip = format!("sk{i}");
                a.andi(Reg::T6, Reg::T1, 1);
                a.beqz(Reg::T6, &skip);
                a.addi(Reg::T1, Reg::T1, 13);
                a.label(&skip);
            }
            9 => {
                a.ldbu(Reg::T5, Reg::S0, disp + 1);
                a.add(Reg::T3, Reg::T3, Reg::T5);
            }
            10 => {
                a.stb(Reg::T3, Reg::S0, disp + 5);
            }
            _ => {
                a.xor(Reg::T1, Reg::T1, Reg::T3);
            }
        }
    }
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "loop");
    a.out(Reg::T1);
    a.out(Reg::T3);
    a.halt();
    a.assemble().expect("generated program assembles")
}

fn assert_equal(batched: &SimResult, perinst: &SimResult, what: &str) {
    assert_eq!(batched.cycles, perinst.cycles, "cycles [{what}]");
    assert_eq!(batched.retired, perinst.retired, "retired [{what}]");
    assert_eq!(batched.checksum, perinst.checksum, "checksum [{what}]");
    assert_eq!(batched.digest, perinst.digest, "digest [{what}]");
    assert_eq!(batched.stats, perinst.stats, "SimStats [{what}]");
    assert_eq!(batched.reno, perinst.reno, "RenoStats [{what}]");
    assert_eq!(batched.it, perinst.it, "ItStats [{what}]");
    assert_eq!(batched.frontend, perinst.frontend, "FrontEndStats [{what}]");
    assert_eq!(batched.caches, perinst.caches, "CacheStats [{what}]");
    assert_eq!(batched.halted, perinst.halted, "halted [{what}]");
}

fn machines() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("4w-base", MachineConfig::four_wide(RenoConfig::baseline())),
        ("4w-reno", MachineConfig::four_wide(RenoConfig::reno())),
        (
            "6w-reno-fi",
            MachineConfig::six_wide(RenoConfig::reno_full_integration()),
        ),
        (
            "4w-reno-2c-p64",
            MachineConfig::four_wide(RenoConfig::reno())
                .with_sched_loop(2)
                .with_pregs(64),
        ),
    ]
}

/// Skip when the environment pins the feed (the CI golden jobs run with
/// `RENO_FEED` set; the override would make both sides identical and the
/// comparison vacuous).
fn feed_pinned() -> bool {
    std::env::var_os("RENO_FEED").is_some()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn batched_feed_is_counter_exact(
        body in prop::collection::vec(any::<u8>(), 1..40),
        iters in any::<u8>(),
    ) {
        if feed_pinned() {
            return;
        }
        let p = gen_program(&body, iters);
        for (name, m) in machines() {
            let batched = Simulator::new(&p, m.clone()).run(1 << 22);
            let perinst = Simulator::new(&p, m.with_per_inst_feed()).run(1 << 22);
            assert_equal(&batched, &perinst, name);
        }
    }

    /// Fuel-limited runs end mid-program (the oracle runs dry): the drain
    /// and final architectural state must still match exactly.
    #[test]
    fn batched_feed_matches_under_fuel_cut(
        body in prop::collection::vec(any::<u8>(), 1..24),
        iters in any::<u8>(),
        fuel in 1u64..4000,
    ) {
        if feed_pinned() {
            return;
        }
        let p = gen_program(&body, iters);
        let m = MachineConfig::four_wide(RenoConfig::reno());
        let batched = Simulator::with_fuel(&p, m.clone(), fuel).run(1 << 22);
        let perinst =
            Simulator::with_fuel(&p, m.with_per_inst_feed(), fuel).run(1 << 22);
        assert_equal(&batched, &perinst, "fuel-cut");
    }
}

/// A deterministic directed complement to the random cases: the recipe is
/// chosen to hit every instruction class in one program.
#[test]
fn directed_all_classes_feed_equivalence() {
    if feed_pinned() {
        return;
    }
    let body: Vec<u8> = (0u8..=255).step_by(3).collect();
    let p = gen_program(&body, 17);
    for (name, m) in machines() {
        let batched = Simulator::new(&p, m.clone()).run(1 << 24);
        let perinst = Simulator::new(&p, m.with_per_inst_feed()).run(1 << 24);
        assert_equal(&batched, &perinst, name);
    }
}
