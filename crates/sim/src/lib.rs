//! # reno-sim — the cycle-level out-of-order timing simulator
//!
//! A trace-driven, dynamically scheduled superscalar core modelled after the
//! paper's §4.1 machine: a 13-stage pipeline (1 branch predict, 2 I$,
//! 1 decode, 2 rename, 1 dispatch, 1 schedule, 2 register read, 1 execute,
//! 1 complete, 1 retire), a 128-entry ROB, 48-entry load buffer, 24-entry
//! store buffer, 50-entry issue queue and 160 physical registers, with the
//! RENO renamer (`reno-core`) embedded in the two rename stages.
//!
//! The functional oracle (`reno-func`) supplies the correct-path dynamic
//! instruction stream; all *timing* comes from this crate's pipeline model:
//!
//! * fetch: hybrid predictor + BTB + RAS, one taken branch per cycle,
//!   I$ modelled through `reno-mem`; mispredicted branches stall fetch until
//!   they resolve at execute (trace-driven wrong-path simplification);
//! * rename/dispatch: the RENO group rules, with physical-register,
//!   ROB/IQ/LQ/SQ structural stalls;
//! * schedule: oldest-first wakeup-select with a configurable
//!   wakeup-select loop latency ([`MachineConfig::sched_loop`]) and per-class
//!   issue ports; load-hit speculation with replay on miss;
//! * execute: 3-input-adder fusion cost model for RENO_CF displacements;
//!   store-sets-guided load scheduling; memory-ordering violation squashes
//!   that roll the renamer back through its reference-counting undo path;
//! * retire: in-order, stores and integrated-load re-executions share the
//!   D$ store port; failed re-executions squash and re-rename.
//!
//! ```no_run
//! use reno_isa::{Asm, Reg};
//! use reno_core::RenoConfig;
//! use reno_sim::{MachineConfig, Simulator};
//!
//! let mut a = Asm::new();
//! a.li(Reg::T0, 100);
//! a.label("loop");
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bnez(Reg::T0, "loop");
//! a.halt();
//! let prog = a.assemble()?;
//!
//! let base = Simulator::new(&prog, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 20);
//! let reno = Simulator::new(&prog, MachineConfig::four_wide(RenoConfig::reno())).run(1 << 20);
//! assert_eq!(base.retired, reno.retired, "RENO changes timing, never results");
//! println!("speedup: {:.1}%", (base.cycles as f64 / reno.cycles as f64 - 1.0) * 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod pipeline;
mod stats;

pub use config::MachineConfig;
pub use pipeline::Simulator;
pub use stats::{SimResult, SimStats};
