//! # reno-sim — the cycle-level out-of-order timing simulator
//!
//! A trace-driven, dynamically scheduled superscalar core modelled after the
//! paper's §4.1 machine: a 13-stage pipeline (1 branch predict, 2 I$,
//! 1 decode, 2 rename, 1 dispatch, 1 schedule, 2 register read, 1 execute,
//! 1 complete, 1 retire), a 128-entry ROB, 48-entry load buffer, 24-entry
//! store buffer, 50-entry issue queue and 160 physical registers, with the
//! RENO renamer (`reno-core`) embedded in the two rename stages.
//!
//! The functional oracle (`reno-func`) supplies the correct-path dynamic
//! instruction stream; all *timing* comes from this crate's pipeline model:
//!
//! * fetch: hybrid predictor + BTB + RAS, one taken branch per cycle,
//!   I$ modelled through `reno-mem`; mispredicted branches stall fetch until
//!   they resolve at execute (trace-driven wrong-path simplification);
//! * rename/dispatch: the RENO group rules, with physical-register,
//!   ROB/IQ/LQ/SQ structural stalls;
//! * schedule: oldest-first wakeup-select with a configurable
//!   wakeup-select loop latency ([`MachineConfig::sched_loop`]) and per-class
//!   issue ports; load-hit speculation with replay on miss;
//! * execute: 3-input-adder fusion cost model for RENO_CF displacements;
//!   store-sets-guided load scheduling; memory-ordering violation squashes
//!   that roll the renamer back through its reference-counting undo path;
//! * retire: in-order, stores and integrated-load re-executions share the
//!   D$ store port; failed re-executions squash and re-rename.
//!
//! # Host performance: the event-driven scheduler
//!
//! The steady-state `run()` loop never scans the reorder buffer and never
//! allocates:
//!
//! * execution events live on a tiny cycle-indexed calendar wheel filled at
//!   select (the select-to-execute latency ahead) and drained at execute;
//! * select examines only issue-queue entries whose wakeup promises have
//!   matured: a program-ordered ready list, a 512-slot wakeup wheel (plus a
//!   far heap past its horizon) for operands with a known completion cycle,
//!   and per-physical-register waiter lists for operands whose producer has
//!   not issued yet;
//! * store-to-load forwarding and memory-ordering violation checks walk
//!   compact program-ordered load/store queue mirrors instead of the ROB;
//! * ROB entries are split hot/cold: a compact 80-byte scheduling record
//!   per entry, with the `DynInst`/`Renamed` payloads in a parallel deque and
//!   the dynamic instruction stream stored once in a sequence-indexed ring;
//! * every scratch structure is reused with retained capacity, so after
//!   warm-up the hot loop performs no heap allocation (verified by the
//!   `reno-alloctrack` counting-allocator test).
//!
//! All of this is *timing-invisible*: the reference whole-ROB polling
//! scheduler is kept behind [`MachineConfig::naive_sched`], and the
//! `sched_equivalence` property test plus the `pinned_timing` snapshots
//! enforce cycle-for-cycle, counter-for-counter equality between the two.
//!
//! # Sampling hooks
//!
//! The checkpointed-sampling subsystem (`reno-sample`) drives the pipeline
//! through three hooks, each a strict generalization of the normal entry
//! points: [`Simulator::from_cpu`] resumes from any architectural state (a
//! restored `reno_func::Checkpoint`), [`Simulator::with_warm_state`] /
//! [`Simulator::run_with_state`] thread functionally warmed caches,
//! predictors, and store-sets ([`WarmState`]) into and out of a run, and
//! [`Simulator::with_measure_window`] snapshots every counter when chosen
//! instructions retire ([`SampleMark`]), so a measurement interval's delta
//! has the pipeline in full flight at both edges. A differential property
//! suite in `reno-sample` pins resumed runs as counter-identical to
//! uninterrupted ones.
//!
//! ```no_run
//! use reno_isa::{Asm, Reg};
//! use reno_core::RenoConfig;
//! use reno_sim::{MachineConfig, Simulator};
//!
//! let mut a = Asm::new();
//! a.li(Reg::T0, 100);
//! a.label("loop");
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bnez(Reg::T0, "loop");
//! a.halt();
//! let prog = a.assemble()?;
//!
//! let base = Simulator::new(&prog, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 20);
//! let reno = Simulator::new(&prog, MachineConfig::four_wide(RenoConfig::reno())).run(1 << 20);
//! assert_eq!(base.retired, reno.retired, "RENO changes timing, never results");
//! println!("speedup: {:.1}%", (base.cycles as f64 / reno.cycles as f64 - 1.0) * 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod pipeline;
mod stats;

pub use config::MachineConfig;
pub use pipeline::{classify_control, Simulator, WarmState};
pub use stats::{SampleMark, SimResult, SimStats};
