use crate::stats::SampleMark;
use crate::{MachineConfig, SimResult, SimStats};
use reno_core::Reno;
use reno_cpa::{Bucket, InstRecord};
use reno_func::{Cpu, DynInst, Oracle};
use reno_isa::{OpClass, Opcode, Program, Reg, RenameClass, STACK_TOP};
use reno_mem::{MemHierarchy, ServedBy};
use reno_trace::{BranchClass, EventKind, PipelineTrace, RenameOutcome, SquashCause, SysEventKind};
use reno_uarch::{ControlKind, FrontEnd, StoreSets};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Select-to-execute latency: 1 schedule + 2 register read.
const EXE_OFFSET: u64 = 3;
/// Rename1 to dispatch (into the issue queue): rename2 + dispatch.
const RENAME_TO_DISPATCH: u64 = 2;
/// Earliest select after rename: dispatch + 1.
const RENAME_TO_SELECT: u64 = 3;
/// Completion to retirement: complete stage + retire stage.
const COMPLETE_TO_RETIRE: u64 = 2;
/// I$ data to rename: 1 more I$ stage + decode + rename entry.
const ICACHE_TO_RENAME: u64 = 3;

/// Slots of the execution event wheel. Execution events are scheduled
/// exactly [`EXE_OFFSET`] cycles ahead at select, so a tiny power-of-two
/// ring suffices.
const EXEC_WHEEL: usize = 4;

/// Slots of the select wakeup wheel. Wakeup promises are almost always
/// near-term (dispatch delay, ALU/L1 latencies, L2 and memory fills);
/// anything beyond the horizon (deep memory-queue backpressure, or the
/// "never" promise of a replayed producer) overflows into a tiny heap.
const SEL_WHEEL: usize = 512;

/// Absent register sentinel in the packed [`Slot`] fields.
const NONE32: u32 = u32::MAX;

// `Slot::flags` bits.
const F_IN_IQ: u16 = 1 << 0;
const F_ISSUED: u16 = 1 << 1;
const F_EXEC_DONE: u16 = 1 << 2;
const F_COMPLETED: u16 = 1 << 3;
const F_ADDR_KNOWN: u16 = 1 << 4;
const F_MISPRED: u16 = 1 << 5;
const F_REEXEC_DONE: u16 = 1 << 6;
const F_NEEDS_REEXEC: u16 = 1 << 7;
const F_IN_LQ: u16 = 1 << 8;
const F_IN_SQ: u16 = 1 << 9;
const F_ELIMINATED: u16 = 1 << 10;

#[derive(Clone, Copy, Debug)]
struct Fetched {
    seq: u64,
    rename_ready: u64,
    mispredicted: bool,
    /// Instruction re-entered fetch from the squash-replay queue (counted
    /// in [`SimStats::replay_renamed`] when it reaches rename).
    from_replay: bool,
}

/// A packed renamed source: physical register index (or [`NONE32`]) and
/// RENO displacement.
#[derive(Clone, Copy, Debug)]
struct SrcP {
    preg: u32,
    disp: i32,
}

const NO_SRC: SrcP = SrcP {
    preg: NONE32,
    disp: 0,
};

/// The *hot* per-ROB-entry state: everything the per-cycle scheduler loops
/// (retire's completion peek, select's eligibility exam, execute's guards
/// and latency model) need, packed into a compact 80-byte record (the full
/// slot used to be ~200 bytes). The bulky [`DynInst`]/[`Renamed`] payloads
/// live in the parallel [`SlotAux`] deque and are touched only at stage
/// boundaries (rename, retire, squash, CPA).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct Slot {
    seq: u64,
    complete: u64,
    exec_start: u64,
    min_select: u64,
    /// Store sequence this load must wait for (store-sets prediction);
    /// `u64::MAX` = none.
    ss_dep: u64,
    mem_addr: u64,
    srcs: [SrcP; 2],
    /// Wakeup target: the physical destination of an *issued* instruction
    /// ([`NONE32`] for eliminated instructions and for no destination).
    dst_preg: u32,
    /// The register the destination mapping replaced ([`NONE32`] if the
    /// instruction has no destination): dereferenced at retirement without
    /// touching the cold payload.
    old_preg: u32,
    flags: u16,
    op: Opcode,
}

impl Slot {
    #[inline]
    fn has(&self, f: u16) -> bool {
        self.flags & f != 0
    }

    #[inline]
    fn set(&mut self, f: u16) {
        self.flags |= f;
    }

    #[inline]
    fn clear(&mut self, f: u16) {
        self.flags &= !f;
    }

    /// The memory range `[addr, addr+width)` this load/store touches.
    #[inline]
    fn mem_range(&self) -> (u64, u64) {
        let w = self.op.mem_width().map_or(0, |w| w.bytes());
        (self.mem_addr, w)
    }
}

/// Per-physical-register scheduler state, packed so the rename/wakeup/
/// execute paths touch one cache line per register instead of four arrays.
#[derive(Clone, Copy, Debug)]
struct PregState {
    /// Cycle from which consumers may be selected (`u64::MAX` = no promise).
    ready_sel: u64,
    /// Cycle the value completes (`u64::MAX` = unknown).
    complete: u64,
    /// The architectural value the producer writes (from the oracle).
    val: i64,
    /// Producing instruction's sequence number (for critical-path records).
    producer: u64,
}

/// The cold half of a ROB entry (see [`Slot`]; the [`DynInst`] itself
/// lives in the sequence-indexed `dyn_ring`). Of the whole [`Renamed`]
/// record only the destination bookkeeping is live after dispatch
/// (rollback at squash, shared-mapping lookup at re-execution, CPA), so
/// only that is kept — the aux entry stays a small `Copy` struct.
#[derive(Clone, Copy, Debug)]
struct SlotAux {
    dst: Option<reno_core::DstInfo>,
    rename_cycle: u64,
    served: Option<ServedBy>,
    /// Producer of the last-arriving source (for critical-path analysis).
    dep_seq: Option<u64>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PortClass {
    Alu,
    Load,
    Store,
}

fn port_class(op: Opcode) -> PortClass {
    match op.class() {
        OpClass::Load => PortClass::Load,
        OpClass::Store => PortClass::Store,
        _ => PortClass::Alu,
    }
}

fn ranges_overlap(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.0 + b.1 && b.0 < a.0 + a.1
}

/// Covering: does store range `s` fully cover load range `l`?
fn covers(s: (u64, u64), l: (u64, u64)) -> bool {
    s.0 <= l.0 && l.0 + l.1 <= s.0 + s.1
}

/// One entry of the (program-ordered) load or store queue. `addr`/`width`
/// are fixed at dispatch (the oracle resolves addresses up front); `done`
/// means "address generated" for stores and "execution completed" for
/// loads — exactly the conditions the forwarding and violation scans test.
#[derive(Clone, Copy, Debug)]
struct LsqEntry {
    seq: u64,
    addr: u64,
    width: u64,
    done: bool,
}

/// Binary search over a program-ordered [`VecDeque`] of [`LsqEntry`]:
/// index of the first entry with `seq >= bound`.
fn lsq_lower_bound(q: &VecDeque<LsqEntry>, bound: u64) -> usize {
    q.binary_search_by(|e| {
        if e.seq < bound {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    })
    .unwrap_err()
}

/// A small sorted set of sequence numbers (allocation-free in steady state;
/// replaces a `HashSet<u64>` whose per-lookup hashing dominated rename).
#[derive(Debug, Default)]
struct SeqSet {
    v: Vec<u64>,
}

impl SeqSet {
    fn insert(&mut self, seq: u64) {
        if let Err(i) = self.v.binary_search(&seq) {
            self.v.insert(i, seq);
        }
    }

    fn remove(&mut self, seq: u64) -> bool {
        if self.v.is_empty() {
            return false;
        }
        match self.v.binary_search(&seq) {
            Ok(i) => {
                self.v.remove(i);
                true
            }
            Err(_) => false,
        }
    }
}

/// Long-lived microarchitectural state that outlives one [`Simulator`] run:
/// cache directories, branch-prediction structures, and the store-sets
/// memory dependence predictor.
///
/// The sampling subsystem threads one `WarmState` through a whole sampled
/// run: functional fast-forward warms it cheaply between measurement
/// intervals ([`reno_mem::MemHierarchy::warm_data`],
/// [`reno_uarch::FrontEnd::process`]), each detailed interval consumes it
/// via [`Simulator::with_warm_state`] and returns the further-trained state
/// from [`Simulator::run_with_state`].
#[derive(Clone, Debug)]
pub struct WarmState {
    /// Cache directory state (I$/D$/L2).
    pub mem: MemHierarchy,
    /// Direction predictor, BTB and RAS.
    pub frontend: FrontEnd,
    /// Store-sets memory dependence predictor.
    pub storesets: StoreSets,
}

impl WarmState {
    /// Cold structures for `cfg`'s machine (what [`Simulator::new`] builds
    /// internally).
    pub fn cold(cfg: &MachineConfig) -> WarmState {
        WarmState {
            mem: MemHierarchy::new(cfg.hier),
            frontend: FrontEnd::new(cfg.bpred, cfg.btb, cfg.ras_entries),
            storesets: StoreSets::new(cfg.storesets),
        }
    }
}

/// Decodes a dynamic control instruction into the front end's
/// [`ControlKind`] taxonomy — shared between the fetch stage and the
/// sampling subsystem's functional warming (which must train the predictors
/// exactly as fetch would).
pub fn classify_control(d: &DynInst) -> ControlKind {
    classify_control_op(d.inst.op, d.inst.rs1)
}

#[inline]
fn classify_control_op(op: Opcode, rs1: Reg) -> ControlKind {
    match op {
        Opcode::Br => ControlKind::DirectJump,
        Opcode::Jal => ControlKind::Call,
        Opcode::Jr => {
            if rs1 == Reg::RA {
                ControlKind::Return
            } else {
                ControlKind::IndirectJump
            }
        }
        Opcode::Jalr => ControlKind::IndirectCall,
        _ => ControlKind::Cond,
    }
}

/// The cycle-level out-of-order core. See the crate docs for the model, the
/// event-driven scheduler, and an end-to-end example.
pub struct Simulator<'p> {
    cfg: MachineConfig,
    oracle: Oracle<'p>,
    oracle_done: bool,
    replay: VecDeque<u64>,
    /// The dynamic instruction stream's in-flight window, indexed by
    /// `seq & dyn_mask`: each [`DynInst`] is written once (at first fetch)
    /// and read by every later stage, including squash replays — the ring
    /// outlives fetch/ROB residency because the live window (ROB + fetch
    /// buffer) is strictly smaller than the ring.
    dyn_ring: Vec<DynInst>,
    /// Decode-time rename pre-classification of each ring entry,
    /// index-aligned with `dyn_ring`: written by the same feed that writes
    /// the [`DynInst`], consumed by the rename stage instead of re-deriving
    /// the instruction's shape per dynamic instance.
    class_ring: Vec<RenameClass>,
    dyn_mask: u64,
    /// Block-batched feed cursor: `[feed_head, feed_tail)` are sequence
    /// numbers already prefilled into the rings by `Oracle::refill` but not
    /// yet handed to fetch. Unused (head == tail) on the per-instruction
    /// feed path.
    feed_head: u64,
    feed_tail: u64,
    batched_feed: bool,

    frontend: FrontEnd,
    fetch_buf: VecDeque<Fetched>,
    fetch_stalled_until: u64,
    waiting_branch: Option<u64>,
    halt_seen: bool,

    reno: Reno,
    /// Hot scheduling state, one compact entry per ROB slot.
    rob: VecDeque<Slot>,
    /// Cold payloads, index-aligned with `rob`.
    aux: VecDeque<SlotAux>,
    iq_count: usize,
    lq_count: usize,
    sq_count: usize,

    /// Program-ordered load queue (ROB-resident, non-eliminated loads).
    lq: VecDeque<LsqEntry>,
    /// Program-ordered store queue (ROB-resident stores; the committed half
    /// lives in `store_drain`).
    sq: VecDeque<LsqEntry>,
    /// Integrated loads awaiting pre-retirement re-execution, in program
    /// order (replaces a whole-ROB scan per cycle).
    reexec_queue: VecDeque<u64>,

    pregs: Vec<PregState>,

    // --- Event-driven scheduler state (unused when `cfg.naive_sched`) ---
    /// Execution calendar: `exec_wheel[c % EXEC_WHEEL]` holds the sequence
    /// numbers selected to begin execution at cycle `c`, in program order.
    exec_wheel: [Vec<u64>; EXEC_WHEEL],
    /// IQ entries whose wakeup promises have matured; examined (in program
    /// order) by select every cycle. Sorted by sequence number.
    iq_ready: Vec<u64>,
    /// Near-term sleepers: `sel_wheel[c % SEL_WHEEL]` holds IQ entries whose
    /// wakeup promise matures at cycle `c`.
    sel_wheel: Vec<Vec<u64>>,
    /// Sleepers beyond the wheel horizon: `(wake_at, seq)`. Almost always
    /// empty; also parks never-selectable entries (`wake_at == u64::MAX`).
    sel_far: BinaryHeap<Reverse<(u64, u64)>>,
    /// IQ entries blocked on a register with no completion promise yet
    /// (producer not selected): woken explicitly when it is.
    preg_waiters: Vec<Vec<u64>>,
    /// Scratch: consumers woken by this cycle's issues, filed after select.
    woken: Vec<u64>,
    /// Scratch for draining the wakeup structures on a reschedule.
    resched_scratch: Vec<u64>,
    /// A load completed *earlier* than its optimistic wakeup promised (MSHR
    /// merge with an in-flight fill): sleeping promises may be stale, so
    /// re-examine every pending entry this cycle.
    resched_all: bool,

    mem: MemHierarchy,
    storesets: StoreSets,
    suppress_integration: SeqSet,
    /// Retired stores awaiting their D$ write (the store queue's committed
    /// half). Drained at `store_ports` per cycle; integrated-load
    /// re-execution shares the same port (paper §2.2).
    store_drain: VecDeque<u64>,
    port_budget: usize,

    cycle: u64,
    retired: u64,
    halt_retired: bool,
    stats: SimStats,
    cpa: Vec<InstRecord>,
    /// Structured event sink (present only when `cfg.trace`): every stage
    /// guards its hook with one `Option` check, so a disabled trace costs
    /// nothing and changes nothing (`trace_differential` tests pin both).
    trace: Option<Box<PipelineTrace>>,

    /// Retired-instruction boundaries of the requested measure window
    /// (`u64::MAX` = no window): snapshots are taken when `retired` first
    /// reaches each boundary.
    mark_at: (u64, u64),
    mark_start: Option<SampleMark>,
    mark_end: Option<SampleMark>,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator over `program` with the given machine.
    pub fn new(program: &'p Program, cfg: MachineConfig) -> Simulator<'p> {
        Simulator::with_fuel(program, cfg, u64::MAX)
    }

    /// Like [`Simulator::new`] but caps the number of dynamic instructions
    /// simulated (the oracle stops feeding after `fuel` instructions).
    pub fn with_fuel(program: &'p Program, cfg: MachineConfig, fuel: u64) -> Simulator<'p> {
        Simulator::from_cpu(program, cfg, Cpu::new(program), fuel)
    }

    /// Builds a simulator that *resumes* from an existing architectural
    /// state (e.g. a restored [`reno_func::Checkpoint`]): the oracle
    /// continues from `cpu`'s current pc, and the initial physical-register
    /// values mirror `cpu`'s architectural register file (the reset map
    /// table maps logical register `r` to physical register `r`).
    ///
    /// Microarchitectural structures start cold; chain
    /// [`Simulator::with_warm_state`] to inject functionally warmed state.
    /// `fuel` caps the dynamic instructions fed from this point on.
    pub fn from_cpu(
        program: &'p Program,
        cfg: MachineConfig,
        cpu: Cpu,
        fuel: u64,
    ) -> Simulator<'p> {
        let total = cfg.reno.total_pregs;
        let mut pregs = vec![
            PregState {
                ready_sel: 0,
                complete: 0,
                val: 0,
                producer: u64::MAX,
            };
            total
        ];
        debug_assert_eq!(Cpu::new(program).reg(Reg::SP), STACK_TOP as i64);
        for r in Reg::all() {
            pregs[r.index()].val = cpu.reg(r);
        }
        // The live seq window spans the ROB plus the fetch buffer; fetch_stage
        // gates on `len >= fetch_width * 4` *before* fetching up to another
        // `fetch_width`, so the buffer legally peaks at `5 * fetch_width - 1`.
        // `next_power_of_two` rounds up past the peak, and the batched feed's
        // room computation keeps prefilled-but-unfetched entries within
        // whatever slack that leaves.
        let dyn_ring_size = (cfg.rob_size + cfg.fetch_width * 5).next_power_of_two();
        let start_seq = cpu.executed();
        let batched_feed = match std::env::var("RENO_FEED").as_deref() {
            Ok("perinst" | "per-inst" | "per_inst") => false,
            Ok("batched") => true,
            _ => cfg.batched_feed,
        };
        let nop_class = RenameClass::of(&reno_isa::Inst::alu_ri(
            Opcode::Addi,
            Reg::ZERO,
            Reg::ZERO,
            0,
        ));
        Simulator {
            frontend: FrontEnd::new(cfg.bpred, cfg.btb, cfg.ras_entries),
            reno: Reno::new(cfg.reno),
            mem: MemHierarchy::new(cfg.hier),
            storesets: StoreSets::new(cfg.storesets),
            oracle: Oracle::from_cpu(cpu, program, fuel),
            oracle_done: false,
            replay: VecDeque::new(),
            dyn_ring: vec![
                DynInst {
                    seq: u64::MAX,
                    pc: 0,
                    inst: reno_isa::Inst::alu_ri(Opcode::Addi, Reg::ZERO, Reg::ZERO, 0),
                    next_pc: 0,
                    taken: false,
                    dst_val: 0,
                    mem_addr: 0,
                };
                dyn_ring_size
            ],
            class_ring: vec![nop_class; dyn_ring_size],
            dyn_mask: dyn_ring_size as u64 - 1,
            feed_head: start_seq,
            feed_tail: start_seq,
            batched_feed,
            fetch_buf: VecDeque::with_capacity(cfg.fetch_width * 4 + 1),
            fetch_stalled_until: 0,
            waiting_branch: None,
            halt_seen: false,
            rob: VecDeque::with_capacity(cfg.rob_size),
            aux: VecDeque::with_capacity(cfg.rob_size),
            iq_count: 0,
            lq_count: 0,
            sq_count: 0,
            lq: VecDeque::with_capacity(cfg.lq_size),
            sq: VecDeque::with_capacity(cfg.sq_size),
            reexec_queue: VecDeque::new(),
            pregs,
            exec_wheel: std::array::from_fn(|_| Vec::with_capacity(cfg.issue_width)),
            iq_ready: Vec::with_capacity(cfg.iq_size),
            sel_wheel: vec![Vec::new(); SEL_WHEEL],
            sel_far: BinaryHeap::with_capacity(cfg.iq_size),
            preg_waiters: vec![Vec::new(); total],
            woken: Vec::with_capacity(cfg.iq_size),
            resched_scratch: Vec::with_capacity(2 * cfg.iq_size),
            resched_all: false,
            suppress_integration: SeqSet::default(),
            store_drain: VecDeque::new(),
            port_budget: 0,
            cycle: 0,
            retired: 0,
            halt_retired: false,
            stats: SimStats::default(),
            cpa: Vec::new(),
            trace: cfg.trace.then(Box::default),
            mark_at: (u64::MAX, u64::MAX),
            mark_start: None,
            mark_end: None,
            cfg,
        }
    }

    /// Replaces the cold microarchitectural structures with pre-warmed ones
    /// (see [`WarmState`]). Call before [`Simulator::run`].
    #[must_use]
    pub fn with_warm_state(mut self, warm: WarmState) -> Simulator<'p> {
        self.mem = warm.mem;
        self.frontend = warm.frontend;
        self.storesets = warm.storesets;
        self
    }

    /// Requests counter snapshots when `start` and `end` instructions (from
    /// this simulator's own starting point) have retired; the pair is
    /// reported in [`SimResult::mark_start`] / [`SimResult::mark_end`] and
    /// combined by [`SimResult::measured`]. With both boundaries inside the
    /// fueled region, the pipeline is in full flight at both snapshots, so
    /// the delta measures steady-state cycles without fill or drain edges.
    /// The run stops as soon as the end mark is taken — in-flight younger
    /// instructions are the caller's padding, not worth detailed cycles.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    #[must_use]
    pub fn with_measure_window(mut self, start: u64, end: u64) -> Simulator<'p> {
        assert!(start <= end, "measure window boundaries out of order");
        self.mark_at = (start, end);
        self
    }

    /// Runs to completion (program halt / oracle exhaustion + pipeline
    /// drain), or at most `max_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant violation).
    pub fn run(self, max_cycles: u64) -> SimResult {
        self.run_with_state(max_cycles).0
    }

    /// Like [`Simulator::run`], but also hands back the trained
    /// microarchitectural structures so a sampling engine can carry cache,
    /// predictor, and store-sets state forward into the next interval.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant violation).
    pub fn run_with_state(mut self, max_cycles: u64) -> (SimResult, WarmState) {
        if self.trace.is_some() {
            // Arm the hierarchy's memory-track sink here rather than at
            // construction: `with_warm_state` may have swapped in a warmed
            // (un-armed) hierarchy after the constructor ran.
            self.mem.enable_trace();
        }
        let naive = self.cfg.naive_sched;
        let mut last_progress = (0u64, 0u64);
        while !self.finished() && self.cycle < max_cycles {
            self.port_budget = self.cfg.store_ports;
            self.retire_stage();
            if self.retired >= self.mark_at.0 && self.mark_start.is_none() {
                self.mark_start = Some(self.mark_now());
            }
            if self.retired >= self.mark_at.1 && self.mark_end.is_none() {
                self.mark_end = Some(self.mark_now());
                // The measurement is complete: everything younger than the
                // end boundary is the sampling engine's padding, which the
                // functional fast-forward re-executes anyway. Stop here
                // instead of paying detailed cost for the drain.
                break;
            }
            self.reexec_stage();
            self.drain_stores();
            if self.finished() {
                break;
            }
            if naive {
                self.naive_execute_stage();
                self.naive_select_stage();
            } else {
                self.execute_stage();
                self.select_stage();
            }
            self.rename_stage();
            self.fetch_stage();
            self.stats.iq_occ_sum += self.iq_count as u64;
            self.stats.rob_occ_sum += self.rob.len() as u64;
            if let Some(t) = &mut self.trace {
                t.sample(self.cycle, self.rob.len(), self.iq_count);
                self.mem.drain_trace(&mut t.sys);
            }
            self.cycle += 1;

            // Deadlock guard: something must retire every so often.
            if self.cycle - last_progress.0 > 100_000 {
                assert!(
                    self.retired > last_progress.1,
                    "pipeline deadlock at cycle {} (retired {}, rob {}, iq {})",
                    self.cycle,
                    self.retired,
                    self.rob.len(),
                    self.iq_count
                );
                last_progress = (self.cycle, self.retired);
            }
        }
        self.finish()
    }

    fn mark_now(&self) -> SampleMark {
        SampleMark {
            cycles: self.cycle,
            retired: self.retired,
            stats: self.stats,
            reno: *self.reno.stats(),
        }
    }

    fn finished(&self) -> bool {
        self.halt_retired
            || (self.oracle_done
                && self.rob.is_empty()
                && self.fetch_buf.is_empty()
                && self.replay.is_empty())
    }

    /// Pre-retirement re-execution of integrated loads (paper §2.2): each
    /// uses a spare slot on the D$ store retirement port, any time between
    /// integration and retirement. Verification failure squashes from the
    /// load and re-renames it with integration suppressed.
    fn reexec_stage(&mut self) {
        while self.port_budget > 0 {
            // Integrated loads are complete at rename, so the oldest pending
            // candidate is simply the queue front (kept in program order;
            // squashes trim it from the back).
            let Some(&seq) = self.reexec_queue.front() else {
                break;
            };
            let idx = self
                .rob_index_of_seq(seq)
                .expect("re-exec candidates are ROB-resident");
            // The shared register's value must have been produced already.
            let m = self.aux[idx]
                .dst
                .expect("integrated load has a mapping")
                .new;
            if self.pregs[m.preg.index()].complete > self.cycle {
                break; // oldest pending re-exec still waits for its producer
            }
            self.port_budget -= 1;
            let mem_addr = self.rob[idx].mem_addr;
            let expected = self.pregs[m.preg.index()].val.wrapping_add(m.disp as i64);
            if expected != self.dyn_of(seq).dst_val {
                self.stats.misintegrations += 1;
                self.suppress_integration.insert(seq);
                self.squash_from(idx, self.cycle + 1, SquashCause::Misintegration);
                continue;
            }
            self.stats.reexec_loads += 1;
            self.rob[idx].set(F_REEXEC_DONE);
            self.reexec_queue.pop_front();
            // The re-execution touches the cache like a normal access.
            self.mem.access_data(mem_addr, self.cycle, false);
        }
    }

    /// Writes committed stores to the D$ with whatever port bandwidth
    /// retirement left over this cycle.
    fn drain_stores(&mut self) {
        while self.port_budget > 0 {
            let Some(addr) = self.store_drain.pop_front() else {
                break;
            };
            self.mem.access_data(addr, self.cycle, true);
            self.sq_count -= 1;
            self.port_budget -= 1;
        }
    }

    fn finish(mut self) -> (SimResult, WarmState) {
        if let Some(t) = &mut self.trace {
            // Flush buffered memory events and balance MSHR allocations with
            // retires for misses still in flight at the end of the run.
            self.mem.finish_trace(&mut t.sys);
        }
        let result = SimResult {
            cycles: self.cycle,
            retired: self.retired,
            stats: self.stats,
            reno: *self.reno.stats(),
            it: *self.reno.it_stats(),
            frontend: *self.frontend.stats(),
            caches: self.mem.cache_stats(),
            hier: *self.mem.stats(),
            digest: self.oracle.cpu().state_digest(),
            checksum: self.oracle.cpu().checksum(),
            halted: self.oracle.halted(),
            cpa: self.cpa,
            mark_start: self.mark_start,
            mark_end: self.mark_end,
            trace: self.trace,
        };
        let warm = WarmState {
            mem: self.mem,
            frontend: self.frontend,
            storesets: self.storesets,
        };
        (result, warm)
    }

    // ------------------------------------------------------------- helpers

    #[inline]
    fn dyn_of(&self, seq: u64) -> &DynInst {
        &self.dyn_ring[(seq & self.dyn_mask) as usize]
    }

    fn rob_index_of_seq(&self, seq: u64) -> Option<usize> {
        let front = self.rob.front()?.seq;
        seq.checked_sub(front)
            .map(|i| i as usize)
            .filter(|&i| i < self.rob.len())
    }

    /// Execution latency of a non-load instruction, including the §3.3
    /// fusion cost model for displaced inputs.
    fn exec_latency(&self, s: &Slot) -> u64 {
        let op = s.op;
        let base = match op.class() {
            OpClass::Mul => 3,
            _ => 1,
        };
        let d0 = s.srcs[0].disp;
        let d1 = s.srcs[1].disp;
        let fused = d0 != 0 || d1 != 0;
        if !fused {
            return base;
        }
        if self.cfg.fused_extra_cycle {
            return base + 1;
        }
        // Zero-cycle fusion via 3-input adders for additions, address
        // generation, branch compares and store data. Fusions into general
        // shifts and multiplies, and register-register operations with BOTH
        // inputs displaced, pay one cycle (paper §3.3).
        let shifty = matches!(
            op,
            Opcode::Sll | Opcode::Srl | Opcode::Sra | Opcode::Slli | Opcode::Srli | Opcode::Srai
        );
        let mul = op.class() == OpClass::Mul;
        let both = d0 != 0 && d1 != 0 && op.class() == OpClass::AluRR;
        if shifty || mul || both {
            base + 1
        } else {
            base
        }
    }

    fn consumer_ready_from_complete(&self, complete: u64) -> u64 {
        complete + 1 - EXE_OFFSET + (self.cfg.sched_loop - 1)
    }

    /// Extra address-generation latency for loads/stores with a displaced
    /// base. Normally zero (3-input AGU adders / sum-addressed caches); the
    /// §3.3 ablation charges one cycle for every fused operation.
    fn agen_fuse_penalty(&self, s: &Slot) -> u64 {
        let fused = s.srcs[0].disp != 0 || s.srcs[1].disp != 0;
        u64::from(fused && self.cfg.fused_extra_cycle)
    }

    fn squash_from(&mut self, rob_idx: usize, refetch_at: u64, cause: SquashCause) {
        let first_seq = self.rob[rob_idx].seq;
        // Fetch-buffered instructions replay *after* the squashed ROB slots:
        // push them first, back to front, so the ROB slots land in front of
        // them at the head of the replay queue.
        while let Some(f) = self.fetch_buf.pop_back() {
            self.replay.push_front(f.seq);
        }
        while matches!(self.reexec_queue.back(), Some(&s) if s >= first_seq) {
            self.reexec_queue.pop_back();
        }
        while self.rob.len() > rob_idx {
            let slot = self.rob.pop_back().expect("len checked");
            let aux = self.aux.pop_back().expect("aux is index-aligned");
            self.reno.rollback_dst(aux.dst.as_ref());
            self.replay.push_front(slot.seq);
            if slot.has(F_IN_IQ) {
                self.iq_count -= 1;
            }
            if slot.has(F_IN_LQ) {
                self.lq_count -= 1;
                self.lq.pop_back();
            }
            if slot.has(F_IN_SQ) {
                self.sq_count -= 1;
                self.sq.pop_back();
            }
            // Kill stale wakeup state for the squashed destination.
            if slot.dst_preg != NONE32 {
                let pr = &mut self.pregs[slot.dst_preg as usize];
                pr.ready_sel = u64::MAX;
                pr.complete = u64::MAX;
            }
            self.stats.squashed += 1;
            if let Some(t) = &mut self.trace {
                t.push(self.cycle, slot.seq, EventKind::Squash { cause });
            }
        }
        self.storesets.squash_from(first_seq);
        if matches!(self.waiting_branch, Some(wb) if wb >= first_seq) {
            self.waiting_branch = None;
        }
        self.fetch_stalled_until = self.fetch_stalled_until.max(refetch_at);
        self.halt_seen = false;
    }

    // ------------------------------------------------------------- retire

    fn retire_stage(&mut self) {
        let mut n = 0;
        while n < self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.has(F_COMPLETED) || head.complete + COMPLETE_TO_RETIRE > self.cycle {
                break;
            }
            let is_store = head.op.is_store();

            if head.has(F_NEEDS_REEXEC) {
                // Integrated loads retire only after their pre-retirement
                // re-execution has verified the shared value (reexec_stage).
                if !head.has(F_REEXEC_DONE) {
                    break;
                }
            } else if is_store {
                // The store retires into the committed half of the store
                // queue and drains to the D$ in the background; its SQ entry
                // is released at drain time.
                self.store_drain.push_back(head.mem_addr);
            }

            let head = self.rob.pop_front().expect("nonempty");
            if let Some(t) = &mut self.trace {
                t.push(self.cycle, head.seq, EventKind::Retire);
            }
            if head.old_preg != NONE32 {
                self.reno
                    .retire_old(reno_core::PhysReg(head.old_preg as u16));
            }
            if head.has(F_IN_LQ) {
                self.lq_count -= 1;
                self.lq.pop_front();
            }
            if head.has(F_IN_SQ) {
                // The scan-side SQ entry leaves with the ROB slot; the
                // occupancy count (`sq_count`) is released at drain time.
                self.sq.pop_front();
            }

            if self.cfg.collect_cpa {
                let aux = *self.aux.front().expect("aux is index-aligned");
                self.record_cpa(&head, &aux);
            }
            self.aux.pop_front();

            self.retired += 1;
            n += 1;
            if head.op == Opcode::Halt {
                self.halt_retired = true;
                break;
            }
        }
    }

    fn record_cpa(&mut self, s: &Slot, aux: &SlotAux) {
        let dispatch = aux.rename_cycle + RENAME_TO_DISPATCH;
        let (complete, dep, bucket) = if s.has(F_ELIMINATED) {
            let m = aux.dst.expect("eliminated instructions have mappings").new;
            let pc = self.pregs[m.preg.index()].complete;
            let complete = if pc == u64::MAX {
                dispatch
            } else {
                pc.max(dispatch)
            };
            (
                complete,
                Some(self.pregs[m.preg.index()].producer),
                Bucket::AluExec,
            )
        } else {
            let bucket = match aux.served {
                Some(ServedBy::Mem) => Bucket::LoadMem,
                Some(_) => Bucket::LoadExec,
                None => Bucket::AluExec,
            };
            (s.complete.max(dispatch), aux.dep_seq, bucket)
        };
        self.cpa.push(InstRecord {
            seq: s.seq,
            dispatch,
            complete,
            commit: self.cycle,
            dep: dep.filter(|&d| d != u64::MAX),
            bucket,
            redirect: s.has(F_MISPRED),
        });
    }

    // ------------------------------------------------------------- execute

    /// Event-driven execute: drain this cycle's calendar slot. Events were
    /// pushed in program order at select, [`EXE_OFFSET`] cycles ago; stale
    /// events (squashed or replayed instructions) fail the guards and fall
    /// through, exactly like the naive scan's re-validation.
    fn execute_stage(&mut self) {
        let b = (self.cycle % EXEC_WHEEL as u64) as usize;
        if self.exec_wheel[b].is_empty() {
            return;
        }
        let mut bucket = std::mem::take(&mut self.exec_wheel[b]);
        for &seq in &bucket {
            let Some(idx) = self.rob_index_of_seq(seq) else {
                continue; // squashed since selection
            };
            let s = &self.rob[idx];
            if !s.has(F_ISSUED) || s.has(F_EXEC_DONE) || s.exec_start != self.cycle {
                continue; // replayed, or a stale event for a re-renamed seq
            }
            self.execute_one(idx);
        }
        bucket.clear();
        self.exec_wheel[b] = bucket;
    }

    /// Reference implementation: whole-ROB polling, kept (behind
    /// [`MachineConfig::naive_sched`]) as the differential-testing baseline
    /// for the event-driven scheduler.
    fn naive_execute_stage(&mut self) {
        // Gather this cycle's executers in program order; look them up by
        // sequence number because a violation squash may shift indices.
        let seqs: Vec<u64> = self
            .rob
            .iter()
            .filter(|s| s.has(F_ISSUED) && !s.has(F_EXEC_DONE) && s.exec_start == self.cycle)
            .map(|s| s.seq)
            .collect();
        for seq in seqs {
            let Some(idx) = self.rob_index_of_seq(seq) else {
                continue;
            };
            if !self.rob[idx].has(F_ISSUED) || self.rob[idx].has(F_EXEC_DONE) {
                continue; // replayed or squashed meanwhile
            }
            self.execute_one(idx);
        }
    }

    fn execute_one(&mut self, idx: usize) {
        let (exec_start, srcs, op, seq) = {
            let s = &self.rob[idx];
            (s.exec_start, s.srcs, s.op, s.seq)
        };

        // Verify operand availability (load-hit speculation check): any
        // source whose value is not actually ready forces a scheduler replay.
        let mut worst_ready = 0u64;
        let mut not_ready = false;
        for src in &srcs {
            if src.preg == NONE32 {
                continue;
            }
            let pr = &self.pregs[src.preg as usize];
            if pr.complete > exec_start {
                not_ready = true;
            }
            worst_ready = worst_ready.max(pr.ready_sel);
        }
        if not_ready {
            self.stats.replays += 1;
            let min_sel = worst_ready.max(self.cycle + 1);
            let slot = &mut self.rob[idx];
            slot.clear(F_ISSUED);
            slot.set(F_IN_IQ);
            slot.min_select = min_sel;
            let dst = slot.dst_preg;
            self.iq_count += 1;
            if dst != NONE32 {
                let pr = &mut self.pregs[dst as usize];
                pr.ready_sel = u64::MAX;
                pr.complete = u64::MAX;
            }
            if !self.cfg.naive_sched {
                self.file_iq(seq);
            }
            return;
        }

        // Record the last-arriving input's producer for CPA.
        if self.cfg.collect_cpa {
            let dep_seq = srcs
                .iter()
                .filter(|src| src.preg != NONE32)
                .max_by_key(|src| self.pregs[src.preg as usize].complete)
                .map(|src| self.pregs[src.preg as usize].producer);
            self.aux[idx].dep_seq = dep_seq;
        }

        match op.class() {
            OpClass::Load => self.execute_load(idx),
            OpClass::Store => self.execute_store(idx),
            _ => {
                let lat = self.exec_latency(&self.rob[idx]);
                let complete = exec_start + lat - 1;
                let slot = &mut self.rob[idx];
                slot.complete = complete;
                slot.set(F_COMPLETED | F_EXEC_DONE);
                let mispred = slot.has(F_MISPRED);
                if mispred {
                    // Branch resolves: fetch restarts down the correct path.
                    self.fetch_stalled_until = self.fetch_stalled_until.max(complete + 1);
                    self.waiting_branch = None;
                }
                if let Some(t) = &mut self.trace {
                    t.push(complete, seq, EventKind::Complete);
                    if mispred {
                        t.push_sys(complete, SysEventKind::Resolve);
                    }
                }
            }
        }
    }

    /// Store-to-load forwarding candidate for the load at `idx`: the
    /// youngest older store with a known, overlapping address. Returns the
    /// store's ROB index and whether it fully covers the load.
    fn find_forward(&self, idx: usize, lrange: (u64, u64)) -> Option<(usize, bool)> {
        if self.cfg.naive_sched {
            for j in (0..idx).rev() {
                let st = &self.rob[j];
                if st.op.is_store() && st.has(F_ADDR_KNOWN) {
                    let srange = st.mem_range();
                    if ranges_overlap(srange, lrange) {
                        return Some((j, covers(srange, lrange)));
                    }
                }
            }
            return None;
        }
        // Indexed path: walk only the (program-ordered) store queue.
        let lseq = self.rob[idx].seq;
        let end = lsq_lower_bound(&self.sq, lseq);
        for k in (0..end).rev() {
            let e = self.sq[k];
            if e.done && ranges_overlap((e.addr, e.width), lrange) {
                let j = self
                    .rob_index_of_seq(e.seq)
                    .expect("SQ entries are ROB-resident");
                return Some((j, covers((e.addr, e.width), lrange)));
            }
        }
        None
    }

    /// Memory-ordering violation candidate for the store at `idx`: the
    /// oldest younger load that already executed with an overlapping
    /// address and was not satisfied by an intervening store.
    fn find_violation(&self, idx: usize, srange: (u64, u64)) -> Option<usize> {
        if self.cfg.naive_sched {
            'outer: for j in idx + 1..self.rob.len() {
                let ld = &self.rob[j];
                if !ld.op.is_load() || !ld.has(F_EXEC_DONE) || ld.has(F_ELIMINATED) {
                    continue;
                }
                let lrange = ld.mem_range();
                if !ranges_overlap(srange, lrange) {
                    continue;
                }
                // Did an even younger (but still older-than-load) store
                // satisfy it?
                for k in (idx + 1..j).rev() {
                    let mid = &self.rob[k];
                    if mid.op.is_store()
                        && mid.has(F_ADDR_KNOWN)
                        && ranges_overlap(mid.mem_range(), lrange)
                    {
                        continue 'outer;
                    }
                }
                return Some(j);
            }
            return None;
        }
        // Indexed path: younger executed loads from the LQ, intervening
        // stores from the SQ.
        let sseq = self.rob[idx].seq;
        let lstart = lsq_lower_bound(&self.lq, sseq + 1);
        'outer2: for k in lstart..self.lq.len() {
            let le = self.lq[k];
            if !le.done || !ranges_overlap(srange, (le.addr, le.width)) {
                continue;
            }
            let lrange = (le.addr, le.width);
            let sq_lo = lsq_lower_bound(&self.sq, sseq + 1);
            let sq_hi = lsq_lower_bound(&self.sq, le.seq);
            for m in (sq_lo..sq_hi).rev() {
                let me = self.sq[m];
                if me.done && ranges_overlap((me.addr, me.width), lrange) {
                    continue 'outer2;
                }
            }
            return Some(
                self.rob_index_of_seq(le.seq)
                    .expect("LQ entries are ROB-resident"),
            );
        }
        None
    }

    /// Marks the LSQ mirror of `seq` done (store address generated / load
    /// executed).
    fn lsq_mark_done(q: &mut VecDeque<LsqEntry>, seq: u64) {
        let i = lsq_lower_bound(q, seq);
        debug_assert!(i < q.len() && q[i].seq == seq, "LSQ entry exists");
        q[i].done = true;
    }

    fn execute_load(&mut self, idx: usize) {
        let (exec_start, seq, mem_addr, lrange, agen_pen) = {
            let s = &self.rob[idx];
            (
                s.exec_start,
                s.seq,
                s.mem_addr,
                s.mem_range(),
                self.agen_fuse_penalty(s),
            )
        };

        // Store-to-load forwarding: youngest older store with a known,
        // overlapping address.
        let forward = self.find_forward(idx, lrange);

        let hit_complete = exec_start + agen_pen + self.cfg.hier.l1d.hit_latency;
        let (complete, served) = match forward {
            Some((_, true)) => {
                self.stats.store_forwards += 1;
                (hit_complete, ServedBy::L1)
            }
            Some((j, false)) => {
                // Partial overlap: wait for the store to leave the window,
                // modelled as a retry after the store's expected retirement.
                let st_complete = if self.rob[j].has(F_COMPLETED) {
                    self.rob[j].complete
                } else {
                    self.cycle + 8
                };
                let retry = st_complete + COMPLETE_TO_RETIRE + 1;
                let slot = &mut self.rob[idx];
                slot.clear(F_ISSUED);
                slot.set(F_IN_IQ);
                slot.min_select = retry.max(self.cycle + 1);
                let dst = slot.dst_preg;
                self.iq_count += 1;
                if dst != NONE32 {
                    let pr = &mut self.pregs[dst as usize];
                    pr.ready_sel = u64::MAX;
                    pr.complete = u64::MAX;
                }
                self.stats.replays += 1;
                if !self.cfg.naive_sched {
                    self.file_iq(seq);
                }
                return;
            }
            None => {
                let (done, served) = self.mem.access_data(mem_addr, exec_start + agen_pen, false);
                (done, served)
            }
        };

        let slot = &mut self.rob[idx];
        slot.complete = complete;
        slot.set(F_COMPLETED | F_EXEC_DONE | F_ADDR_KNOWN);
        let dst = slot.dst_preg;
        if let Some(t) = &mut self.trace {
            t.push(complete, seq, EventKind::Complete);
        }
        if self.cfg.collect_cpa {
            self.aux[idx].served = Some(served);
        }
        if dst != NONE32 {
            let ready = self.consumer_ready_from_complete(complete);
            let pr = &mut self.pregs[dst as usize];
            if !self.cfg.naive_sched && ready < pr.ready_sel {
                // The load beat its optimistic hit wakeup (MSHR merge with
                // an in-flight fill): sleeping consumers hold stale promises.
                self.resched_all = true;
            }
            pr.complete = complete;
            pr.ready_sel = ready;
        }
        Self::lsq_mark_done(&mut self.lq, seq);
    }

    fn execute_store(&mut self, idx: usize) {
        let (seq, srange, complete) = {
            let s = &self.rob[idx];
            let agen_pen = self.agen_fuse_penalty(s);
            let complete = s.exec_start + agen_pen;
            let (seq, srange) = (s.seq, s.mem_range());
            let slot = &mut self.rob[idx];
            slot.complete = complete;
            slot.set(F_COMPLETED | F_EXEC_DONE | F_ADDR_KNOWN);
            (seq, srange, complete)
        };
        if let Some(t) = &mut self.trace {
            t.push(complete, seq, EventKind::Complete);
        }
        let pc = self.dyn_of(seq).pc;
        Self::lsq_mark_done(&mut self.sq, seq);
        self.storesets.store_executed(pc as u64, seq);

        // Memory-ordering violation check: a younger load already executed
        // with an overlapping address, whose youngest older known store is
        // this one, read stale data.
        if let Some(j) = self.find_violation(idx, srange) {
            self.stats.violations += 1;
            self.storesets
                .train_violation(self.dyn_of(self.rob[j].seq).pc as u64, pc as u64);
            self.squash_from(j, self.cycle + 1, SquashCause::MemOrder);
        }
    }

    // ------------------------------------------------------------- select

    /// Files the IQ entry `seq` into the scheduler's wakeup structures
    /// according to its current readiness:
    ///
    /// * a source register with no completion promise (`u64::MAX`) parks it
    ///   in that register's waiter list until the producer issues;
    /// * a known future wakeup time parks it in the wakeup wheel (or the
    ///   far heap beyond the horizon);
    /// * otherwise it joins the ready list, examined by select this cycle.
    fn file_iq(&mut self, seq: u64) {
        let Some(idx) = self.rob_index_of_seq(seq) else {
            return;
        };
        let s = &self.rob[idx];
        if !s.has(F_IN_IQ) || s.has(F_ISSUED) {
            return;
        }
        let mut wake = s.min_select;
        for src in s.srcs {
            if src.preg == NONE32 {
                continue;
            }
            let p = src.preg as usize;
            let r = self.pregs[p].ready_sel;
            if r == u64::MAX {
                if !self.preg_waiters[p].contains(&seq) {
                    self.preg_waiters[p].push(seq);
                }
                return;
            }
            wake = wake.max(r);
        }
        if wake > self.cycle {
            self.park(wake, seq);
        } else {
            self.promote(seq);
        }
    }

    /// Parks a sleeping IQ entry until cycle `wake` (> the current cycle):
    /// near-term promises go to the wakeup wheel, the rest to the far heap.
    fn park(&mut self, wake: u64, seq: u64) {
        if wake - self.cycle < SEL_WHEEL as u64 {
            self.sel_wheel[(wake % SEL_WHEEL as u64) as usize].push(seq);
        } else {
            self.sel_far.push(Reverse((wake, seq)));
        }
    }

    /// Moves a matured sleeper straight into the ready list; the select exam
    /// performs the authoritative eligibility check (and re-parks or drops
    /// entries whose state moved since they were scheduled), so no slot
    /// access is needed here.
    fn promote(&mut self, seq: u64) {
        if let Err(pos) = self.iq_ready.binary_search(&seq) {
            self.iq_ready.insert(pos, seq);
        }
    }

    /// Event-driven select: examine only IQ entries whose wakeup promises
    /// have matured, in program order, applying exactly the eligibility
    /// rules of [`Simulator::naive_select_stage`].
    fn select_stage(&mut self) {
        // Promote matured sleepers into the ready list. On a reschedule
        // event (a load completing earlier than promised), re-file every
        // sleeper from its current state.
        if self.resched_all {
            self.resched_all = false;
            for b in 0..SEL_WHEEL {
                self.resched_scratch.append(&mut self.sel_wheel[b]);
            }
            while let Some(Reverse((_, seq))) = self.sel_far.pop() {
                self.resched_scratch.push(seq);
            }
            while let Some(seq) = self.resched_scratch.pop() {
                self.file_iq(seq);
            }
        }
        let b = (self.cycle % SEL_WHEEL as u64) as usize;
        if !self.sel_wheel[b].is_empty() {
            let mut bucket = std::mem::take(&mut self.sel_wheel[b]);
            for &seq in &bucket {
                self.promote(seq);
            }
            bucket.clear();
            self.sel_wheel[b] = bucket;
        }
        while let Some(&Reverse((at, seq))) = self.sel_far.peek() {
            if at > self.cycle {
                break;
            }
            self.sel_far.pop();
            self.promote(seq);
        }

        if self.iq_ready.is_empty() {
            return;
        }
        let mut total = self.cfg.issue_width;
        let mut alu = self.cfg.alu_ports;
        let mut load = self.cfg.load_ports;
        let mut store = self.cfg.store_ports;

        // Examine ready entries oldest-first. Entries stay in the list only
        // while they remain selectable-but-blocked (port or store-set
        // contention, or issue width exhausted); everything else is dropped
        // or re-filed where it now belongs.
        let mut ready = std::mem::take(&mut self.iq_ready);
        let mut kept = 0;
        for i in 0..ready.len() {
            let seq = ready[i];
            let mut keep = false;
            'exam: {
                let Some(ridx) = self.rob_index_of_seq(seq) else {
                    break 'exam; // squashed
                };
                let s = &self.rob[ridx];
                if !s.has(F_IN_IQ) || s.has(F_ISSUED) {
                    break 'exam;
                }
                // Re-derive the wakeup time: a producer replay since filing
                // may have withdrawn or postponed a completion promise.
                let mut wake = s.min_select;
                let mut blocked = None;
                for src in s.srcs {
                    if src.preg == NONE32 {
                        continue;
                    }
                    let p = src.preg as usize;
                    let r = self.pregs[p].ready_sel;
                    if r == u64::MAX {
                        blocked = Some(p);
                        break;
                    }
                    wake = wake.max(r);
                }
                if let Some(p) = blocked {
                    if !self.preg_waiters[p].contains(&seq) {
                        self.preg_waiters[p].push(seq);
                    }
                    break 'exam;
                }
                if wake > self.cycle {
                    self.park(wake, seq);
                    break 'exam;
                }
                // Selectable this cycle, modulo structural constraints.
                keep = true;
                if total == 0 {
                    break 'exam;
                }
                let pc_class = port_class(s.op);
                let port_free = match pc_class {
                    PortClass::Alu => alu > 0,
                    PortClass::Load => load > 0,
                    PortClass::Store => store > 0,
                };
                if !port_free {
                    break 'exam;
                }
                // Store-sets: a load predicted to conflict waits until the
                // offending store's address is known.
                if s.ss_dep != u64::MAX {
                    if let Some(sidx) = self.rob_index_of_seq(s.ss_dep) {
                        if !self.rob[sidx].has(F_ADDR_KNOWN) {
                            break 'exam;
                        }
                    }
                }
                total -= 1;
                match pc_class {
                    PortClass::Alu => alu -= 1,
                    PortClass::Load => load -= 1,
                    PortClass::Store => store -= 1,
                }
                self.issue_at(ridx);
                keep = false;
            }
            if keep {
                ready[kept] = seq;
                kept += 1;
            }
        }
        ready.truncate(kept);
        self.iq_ready = ready;

        // Consumers woken by this cycle's issues become selectable at the
        // earliest next cycle: file them into the wakeup structures.
        if !self.woken.is_empty() {
            let mut woken = std::mem::take(&mut self.woken);
            for &seq in &woken {
                self.file_iq(seq);
            }
            woken.clear();
            self.woken = woken;
        }
    }

    /// Reference implementation of select: scan the whole ROB oldest-first.
    /// Kept (behind [`MachineConfig::naive_sched`]) as the
    /// differential-testing baseline for the event-driven scheduler.
    fn naive_select_stage(&mut self) {
        let mut total = self.cfg.issue_width;
        let mut alu = self.cfg.alu_ports;
        let mut load = self.cfg.load_ports;
        let mut store = self.cfg.store_ports;

        for i in 0..self.rob.len() {
            if total == 0 {
                break;
            }
            let s = &self.rob[i];
            if !s.has(F_IN_IQ) || s.has(F_ISSUED) || s.min_select > self.cycle {
                continue;
            }
            let pc_class = port_class(s.op);
            let port_free = match pc_class {
                PortClass::Alu => alu > 0,
                PortClass::Load => load > 0,
                PortClass::Store => store > 0,
            };
            if !port_free {
                continue;
            }
            // All register sources must have been woken.
            let ready = s
                .srcs
                .iter()
                .filter(|src| src.preg != NONE32)
                .all(|src| self.pregs[src.preg as usize].ready_sel <= self.cycle);
            if !ready {
                continue;
            }
            // Store-sets: a load predicted to conflict waits until the
            // offending store's address is known.
            if s.ss_dep != u64::MAX {
                if let Some(sidx) = self.rob_index_of_seq(s.ss_dep) {
                    if !self.rob[sidx].has(F_ADDR_KNOWN) {
                        continue;
                    }
                }
            }
            total -= 1;
            match pc_class {
                PortClass::Alu => alu -= 1,
                PortClass::Load => load -= 1,
                PortClass::Store => store -= 1,
            }
            self.issue_at(i);
        }
    }

    /// Issues the IQ entry at ROB index `i`: shared by both scheduler
    /// implementations so the slot updates, the wakeup broadcast, and the
    /// speculative load-hit promise stay identical between them.
    fn issue_at(&mut self, i: usize) {
        self.stats.issued += 1;
        if let Some(t) = &mut self.trace {
            t.push(self.cycle, self.rob[i].seq, EventKind::Issue);
        }
        let exec_start = self.cycle + EXE_OFFSET;
        let (seq, dst, complete) = {
            let agen_pen = self.agen_fuse_penalty(&self.rob[i]);
            let lat = match self.rob[i].op.class() {
                // Load: speculative hit wakeup.
                OpClass::Load => agen_pen + self.cfg.hier.l1d.hit_latency + 1,
                _ => self.exec_latency(&self.rob[i]),
            };
            let slot = &mut self.rob[i];
            slot.set(F_ISSUED);
            slot.clear(F_IN_IQ);
            slot.exec_start = exec_start;
            (slot.seq, slot.dst_preg, exec_start + lat - 1)
        };
        self.iq_count -= 1;

        if dst != NONE32 {
            let p = dst as usize;
            let ready = self.consumer_ready_from_complete(complete);
            let pr = &mut self.pregs[p];
            pr.complete = complete;
            pr.ready_sel = ready;
            if !self.cfg.naive_sched {
                // The register's promise went from "unknown" to a concrete
                // cycle: wake consumers parked on it.
                let waiters = &mut self.preg_waiters[p];
                if !waiters.is_empty() {
                    self.woken.append(waiters);
                }
            }
        }
        if !self.cfg.naive_sched {
            self.exec_wheel[(exec_start % EXEC_WHEEL as u64) as usize].push(seq);
        }
    }

    // ------------------------------------------------------------- rename

    fn rename_stage(&mut self) {
        if self.fetch_buf.is_empty() {
            return;
        }
        self.reno.begin_group();
        let mut n = 0;
        while n < self.cfg.rename_width {
            let Some(front) = self.fetch_buf.front() else {
                break;
            };
            if front.rename_ready > self.cycle {
                break;
            }
            if self.rob.len() >= self.cfg.rob_size {
                self.stats.queue_stall_cycles += u64::from(n == 0);
                break;
            }
            let f = *front;
            let slot = (f.seq & self.dyn_mask) as usize;
            let d = self.dyn_ring[slot];
            let cls = self.class_ring[slot];
            let suppressed = self.suppress_integration.remove(f.seq);
            let renamed = match self
                .reno
                .rename_classified(d.pc as u64, d.inst, &cls, !suppressed)
            {
                Ok(r) => r,
                Err(_) => {
                    if suppressed {
                        self.suppress_integration.insert(f.seq);
                    }
                    self.stats.preg_stall_cycles += u64::from(n == 0);
                    break; // out of physical registers: stall
                }
            };

            let is_load = cls.is_load();
            let is_store = cls.is_store();
            let needs_iq = !renamed.is_eliminated();
            let needs_lq = needs_iq && is_load;
            let needs_sq = is_store;
            if (needs_iq && self.iq_count >= self.cfg.iq_size)
                || (needs_lq && self.lq_count >= self.cfg.lq_size)
                || (needs_sq && self.sq_count >= self.cfg.sq_size)
            {
                // Structural hazard discovered post-rename: undo and retry
                // next cycle.
                self.reno.rollback(&renamed);
                self.reno.undo_rename_stats(&renamed);
                if suppressed {
                    self.suppress_integration.insert(f.seq);
                }
                self.stats.queue_stall_cycles += u64::from(n == 0);
                break;
            }
            self.fetch_buf.pop_front();
            self.stats.replay_renamed += u64::from(f.from_replay);

            // Register bookkeeping for issued destinations.
            let mut dst_preg = NONE32;
            if let (reno_core::RenamedKind::Issued, Some(dm)) = (renamed.kind, renamed.dst) {
                let p = dm.new.preg.index();
                self.pregs[p] = PregState {
                    ready_sel: u64::MAX,
                    complete: u64::MAX,
                    val: d.dst_val,
                    producer: f.seq,
                };
                dst_preg = p as u32;
            }

            // Memory dependence prediction.
            let ss_dep = if needs_lq {
                self.storesets.load_dependence(d.pc as u64)
            } else {
                if is_store {
                    self.storesets.rename_store(d.pc as u64, f.seq);
                }
                None
            };

            let eliminated = renamed.is_eliminated();
            if needs_iq {
                self.iq_count += 1;
            }
            if needs_lq {
                self.lq_count += 1;
            }
            if needs_sq {
                self.sq_count += 1;
            }
            let width = u64::from(cls.width);
            if needs_lq {
                self.lq.push_back(LsqEntry {
                    seq: f.seq,
                    addr: d.mem_addr,
                    width,
                    done: false,
                });
            }
            if needs_sq {
                self.sq.push_back(LsqEntry {
                    seq: f.seq,
                    addr: d.mem_addr,
                    width,
                    done: false,
                });
            }

            let mut srcs = [NO_SRC; 2];
            for (i, m) in renamed.srcs.iter().flatten().enumerate() {
                srcs[i] = SrcP {
                    preg: m.preg.index() as u32,
                    disp: m.disp,
                };
            }
            let mut flags = 0u16;
            if needs_iq {
                flags |= F_IN_IQ;
            }
            if needs_lq {
                flags |= F_IN_LQ;
            }
            if needs_sq {
                flags |= F_IN_SQ;
            }
            if eliminated {
                flags |= F_ELIMINATED | F_COMPLETED;
            }
            if f.mispredicted {
                flags |= F_MISPRED;
            }
            if renamed.needs_load_reexec() {
                flags |= F_NEEDS_REEXEC;
            }

            let old_preg = renamed.dst.map_or(NONE32, |d| d.old.preg.index() as u32);
            self.rob.push_back(Slot {
                seq: f.seq,
                complete: self.cycle + 1, // eliminated: done at rename2
                exec_start: u64::MAX,
                min_select: self.cycle + RENAME_TO_SELECT,
                ss_dep: ss_dep.unwrap_or(u64::MAX),
                mem_addr: d.mem_addr,
                srcs,
                dst_preg,
                old_preg,
                flags,
                op: d.inst.op,
            });
            self.aux.push_back(SlotAux {
                dst: renamed.dst,
                rename_cycle: self.cycle,
                served: None,
                dep_seq: None,
            });
            if let Some(t) = &mut self.trace {
                let outcome = match renamed.kind {
                    reno_core::RenamedKind::Issued => RenameOutcome::Issued,
                    reno_core::RenamedKind::Eliminated(c) => match c {
                        reno_core::ElimClass::Move => RenameOutcome::MoveElim,
                        reno_core::ElimClass::ConstFold => RenameOutcome::ConstFold,
                        reno_core::ElimClass::LoadCse => RenameOutcome::LoadCse,
                        reno_core::ElimClass::AluCse => RenameOutcome::AluCse,
                    },
                };
                t.push(self.cycle, f.seq, EventKind::Rename { outcome });
                if eliminated {
                    // Eliminated instructions complete at rename2 (the
                    // `complete` field the slot was just built with).
                    t.push(self.cycle + 1, f.seq, EventKind::Complete);
                }
            }
            if needs_iq && !self.cfg.naive_sched {
                self.file_iq(f.seq);
            }
            if flags & F_NEEDS_REEXEC != 0 {
                self.reexec_queue.push_back(f.seq);
            }
            n += 1;
        }
    }

    // ------------------------------------------------------------- fetch

    /// Next instruction to fetch, as a sequence number into `dyn_ring`
    /// (writing the ring on first fetch from the oracle).
    ///
    /// On the batched path the oracle prefills the rings a decoded block at
    /// a time (`Oracle::refill`), so the per-instruction cost here is a
    /// cursor increment; the per-instruction path is kept as the
    /// differential baseline (see [`MachineConfig::batched_feed`]).
    fn next_feed(&mut self) -> Option<(u64, bool)> {
        if let Some(seq) = self.replay.pop_front() {
            return Some((seq, true));
        }
        if self.oracle_done || self.halt_seen {
            return None;
        }
        if self.batched_feed {
            if self.feed_head == self.feed_tail {
                // Ring room: everything from the oldest live in-flight seq
                // (ROB head, else the oldest fetch-buffered) through the
                // prefill tail must stay addressable without aliasing.
                let oldest_live = self
                    .rob
                    .front()
                    .map(|s| s.seq)
                    .or_else(|| self.fetch_buf.front().map(|f| f.seq))
                    .unwrap_or(self.feed_tail);
                let room = (self.dyn_mask + 1) - (self.feed_tail - oldest_live);
                debug_assert!(room > 0, "dyn_ring too small for the live window");
                let n = self.oracle.refill(
                    &mut self.dyn_ring,
                    &mut self.class_ring,
                    self.dyn_mask,
                    room,
                );
                if n == 0 {
                    self.oracle_done = true;
                    return None;
                }
                self.feed_tail += n as u64;
            }
            let seq = self.feed_head;
            self.feed_head += 1;
            return Some((seq, false));
        }
        match self.oracle.next() {
            Some(d) => {
                let seq = d.seq;
                if let Some(front) = self.rob.front() {
                    debug_assert!(
                        seq - front.seq <= self.dyn_mask,
                        "dyn_ring too small for the live window"
                    );
                }
                let slot = (seq & self.dyn_mask) as usize;
                self.class_ring[slot] = RenameClass::of(&d.inst);
                self.dyn_ring[slot] = d;
                Some((seq, false))
            }
            None => {
                self.oracle_done = true;
                None
            }
        }
    }

    fn fetch_stage(&mut self) {
        if self.waiting_branch.is_some() || self.cycle < self.fetch_stalled_until {
            return;
        }
        if self.fetch_buf.len() >= self.cfg.fetch_width * 4 {
            return;
        }
        let line_bytes = self.cfg.hier.l1i.line_bytes as u64;
        let mut cur_line: Option<u64> = None;
        let mut ic_done = self.cycle;
        let mut taken = 0;
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width {
            let Some((seq, from_replay)) = self.next_feed() else {
                break;
            };
            // Copy only the fields fetch consumes, not the whole ring record.
            let (pc, op, rs1, d_taken, next_pc) = {
                let d = &self.dyn_ring[(seq & self.dyn_mask) as usize];
                (d.pc, d.inst.op, d.inst.rs1, d.taken, d.next_pc)
            };
            let addr = Program::inst_addr(pc);
            let line = addr / line_bytes;
            if cur_line != Some(line) {
                cur_line = Some(line);
                let (done, _) = self.mem.access_inst(addr, self.cycle);
                ic_done = ic_done.max(done);
            }
            let mut mispredicted = false;
            if op.is_control() && !from_replay {
                let kind = classify_control_op(op, rs1);
                let ok = self
                    .frontend
                    .process(pc as u64, kind, d_taken, next_pc as u64);
                mispredicted = !ok;
                if let Some(t) = &mut self.trace {
                    // Mirror the FrontEndStats accounting: direct jumps and
                    // calls are always right and are not counted there, so
                    // they get no Predict event either.
                    let class = match kind {
                        ControlKind::Cond => Some(BranchClass::Cond),
                        ControlKind::Return => Some(BranchClass::Return),
                        ControlKind::IndirectJump | ControlKind::IndirectCall => {
                            Some(BranchClass::Indirect)
                        }
                        ControlKind::DirectJump | ControlKind::Call => None,
                    };
                    if let Some(class) = class {
                        t.push_sys(self.cycle, SysEventKind::Predict { class, correct: ok });
                    }
                }
            }
            let rename_ready = ic_done + ICACHE_TO_RENAME;
            self.fetch_buf.push_back(Fetched {
                seq,
                rename_ready,
                mispredicted,
                from_replay,
            });
            if let Some(t) = &mut self.trace {
                t.push(
                    self.cycle,
                    seq,
                    EventKind::Fetch {
                        pc: pc as u32,
                        op,
                        replay: from_replay,
                    },
                );
            }
            fetched += 1;

            if op == Opcode::Halt {
                self.halt_seen = true;
                break;
            }
            if mispredicted {
                self.waiting_branch = Some(seq);
                break;
            }
            if op.is_control() && d_taken {
                taken += 1;
                if taken >= 2 {
                    break; // fetch past at most one taken branch per cycle
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;
    use reno_core::RenoConfig;
    use reno_func::run_to_completion;
    use reno_isa::Asm;

    fn loop_program(iters: i64) -> Program {
        let mut a = Asm::named("loop");
        a.li(Reg::T0, iters);
        a.li(Reg::T1, 0);
        a.label("loop");
        a.add(Reg::T1, Reg::T1, Reg::T0);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "loop");
        a.out(Reg::T1);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn hot_slot_stays_compact() {
        assert!(
            std::mem::size_of::<Slot>() <= 80,
            "hot slot stays compact: {} bytes",
            std::mem::size_of::<Slot>()
        );
    }

    #[test]
    fn straight_line_retires_everything() {
        let mut a = Asm::new();
        for i in 0..20 {
            a.addi(Reg::T0, Reg::T0, i as i16);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let r = Simulator::new(&p, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 20);
        assert!(r.halted);
        assert_eq!(r.retired, 21);
        assert!(r.cycles > 10, "pipeline depth is visible");
    }

    #[test]
    fn timing_sim_matches_functional_results() {
        let p = loop_program(500);
        let (cpu, fr) = run_to_completion(&p, 1 << 20).unwrap();
        for cfg in [
            RenoConfig::baseline(),
            RenoConfig::me_only(),
            RenoConfig::cf_me(),
            RenoConfig::reno(),
            RenoConfig::reno_full_integration(),
            RenoConfig::full_integration_only(),
        ] {
            let r = Simulator::new(&p, MachineConfig::four_wide(cfg)).run(1 << 22);
            assert!(r.halted, "{cfg:?}");
            assert_eq!(r.retired, fr.executed, "{cfg:?}");
            assert_eq!(r.digest, cpu.state_digest(), "{cfg:?}");
            assert_eq!(r.checksum, fr.checksum, "{cfg:?}");
        }
    }

    #[test]
    fn reno_eliminates_and_speeds_up_dependent_loop() {
        let p = loop_program(2000);
        let base =
            Simulator::new(&p, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 22);
        let reno = Simulator::new(&p, MachineConfig::four_wide(RenoConfig::reno())).run(1 << 22);
        assert!(
            reno.reno.eliminated() > 1500,
            "loop addi folds: {:?}",
            reno.reno
        );
        assert!(
            reno.cycles < base.cycles,
            "RENO collapses the addi off the critical path: {} vs {}",
            reno.cycles,
            base.cycles
        );
    }

    #[test]
    fn branch_mispredicts_cost_cycles() {
        // A data-dependent unpredictable branch pattern (LCG parity).
        let mut a = Asm::new();
        a.li(Reg::T0, 200); // iterations
        a.li(Reg::T1, 12345); // lcg state
        a.li(Reg::T3, 0);
        a.label("loop");
        a.li(Reg::T2, 1103515245 % 30000);
        a.mul(Reg::T1, Reg::T1, Reg::T2);
        a.addi(Reg::T1, Reg::T1, 12345);
        a.srli(Reg::T2, Reg::T1, 17); // high bits: no short period
        a.andi(Reg::T2, Reg::T2, 1);
        a.beqz(Reg::T2, "skip");
        a.addi(Reg::T3, Reg::T3, 1);
        a.label("skip");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "loop");
        a.out(Reg::T3);
        a.halt();
        let p = a.assemble().unwrap();
        let r = Simulator::new(&p, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 22);
        assert!(r.halted);
        assert!(
            r.frontend.cond_wrong > 20,
            "LCG parity defeats the predictor: {:?}",
            r.frontend
        );
    }

    #[test]
    fn memory_violation_squash_and_storeset_training() {
        // The store's address depends on a cold-miss load; the younger load
        // to the same address issues first and must be squashed.
        let mut a = Asm::new();
        let slot = a.words("slot", &[0x0001_0000 + 64]); // holds a pointer
        let _tgt = a.zeros("tgt", 16);
        a.li(Reg::T5, 99);
        a.li(Reg::A0, slot as i64);
        a.li(Reg::T4, 0);
        a.li(Reg::T6, 20);
        a.label("loop");
        a.ld(Reg::T0, Reg::A0, 0); // pointer load (cold miss first time)
        a.st(Reg::T5, Reg::T0, 0); // store through pointer
        a.li(Reg::T1, 0x0001_0000 + 64);
        a.ld(Reg::T2, Reg::T1, 0); // same address, no name dependence
        a.add(Reg::T4, Reg::T4, Reg::T2);
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "loop");
        a.out(Reg::T4);
        a.halt();
        let p = a.assemble().unwrap();
        let (cpu, _) = run_to_completion(&p, 1 << 20).unwrap();
        let r = Simulator::new(&p, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 22);
        assert!(r.stats.violations >= 1, "violation detected: {:?}", r.stats);
        assert_eq!(r.digest, cpu.state_digest(), "squash preserves correctness");
        assert!(
            r.stats.violations < 18,
            "store sets learn to serialize the pair: {:?}",
            r.stats
        );
    }

    #[test]
    fn misintegration_squashes_and_recovers() {
        // store r1 -> 0(sp); alias store r2 -> the same byte address through
        // a *computed* register (a different physical name, so the IT cannot
        // see the aliasing); reload 0(sp) integrates with the first store's
        // reverse entry and must fail verification.
        let mut a = Asm::new();
        a.li(Reg::T1, 111);
        a.li(Reg::T2, 222);
        a.li(Reg::T4, 8);
        a.add(Reg::T0, Reg::SP, Reg::T4); // t0 = sp + 8 (fresh physical name)
        a.st(Reg::T1, Reg::SP, 0);
        a.st(Reg::T2, Reg::T0, -8); // same address, different name
        a.ld(Reg::T3, Reg::SP, 0); // truth: 222; IT says p(T1) = 111
        a.out(Reg::T3);
        a.halt();
        let p = a.assemble().unwrap();
        let (cpu, _) = run_to_completion(&p, 1 << 20).unwrap();
        let r = Simulator::new(&p, MachineConfig::four_wide(RenoConfig::reno())).run(1 << 22);
        assert!(r.stats.misintegrations >= 1, "{:?}", r.stats);
        assert_eq!(
            r.digest,
            cpu.state_digest(),
            "re-execution preserves correctness"
        );
    }

    #[test]
    fn two_cycle_scheduler_slows_dependent_code() {
        let p = loop_program(1000);
        let tight =
            Simulator::new(&p, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 22);
        let loose = Simulator::new(
            &p,
            MachineConfig::four_wide(RenoConfig::baseline()).with_sched_loop(2),
        )
        .run(1 << 22);
        assert!(
            loose.cycles > tight.cycles,
            "{} vs {}",
            loose.cycles,
            tight.cycles
        );
    }

    #[test]
    fn small_register_file_stalls_baseline_more_than_reno() {
        let p = loop_program(1500);
        let base_small = Simulator::new(
            &p,
            MachineConfig::four_wide(RenoConfig::baseline()).with_pregs(48),
        )
        .run(1 << 22);
        let reno_small = Simulator::new(
            &p,
            MachineConfig::four_wide(RenoConfig::reno()).with_pregs(48),
        )
        .run(1 << 22);
        assert!(base_small.stats.preg_stall_cycles > 0);
        assert!(
            reno_small.stats.preg_stall_cycles < base_small.stats.preg_stall_cycles,
            "eliminated instructions allocate no registers"
        );
    }

    #[test]
    fn cpa_records_cover_retired_stream() {
        let p = loop_program(100);
        let r = Simulator::new(
            &p,
            MachineConfig::four_wide(RenoConfig::baseline()).with_cpa(),
        )
        .run(1 << 22);
        assert_eq!(r.cpa.len() as u64, r.retired);
        let b = reno_cpa::analyze(&r.cpa, 128);
        assert!(b.total() > 0);
    }

    #[test]
    fn fuel_limited_run_drains_cleanly() {
        let p = loop_program(100_000);
        let r = Simulator::with_fuel(&p, MachineConfig::four_wide(RenoConfig::reno()), 5_000)
            .run(1 << 22);
        assert!(!r.halted);
        assert_eq!(r.retired, 5_000);
    }

    #[test]
    fn naive_scheduler_produces_identical_results() {
        let p = loop_program(800);
        for cfg in [RenoConfig::baseline(), RenoConfig::reno()] {
            let fast = Simulator::new(&p, MachineConfig::four_wide(cfg)).run(1 << 22);
            let naive =
                Simulator::new(&p, MachineConfig::four_wide(cfg).with_naive_sched()).run(1 << 22);
            assert_eq!(fast.cycles, naive.cycles, "{cfg:?}");
            assert_eq!(fast.retired, naive.retired, "{cfg:?}");
            assert_eq!(fast.stats, naive.stats, "{cfg:?}");
            assert_eq!(fast.checksum, naive.checksum, "{cfg:?}");
        }
    }
}
