use crate::{MachineConfig, SimResult, SimStats};
use reno_core::{Renamed, Reno};
use reno_cpa::{Bucket, InstRecord};
use reno_func::{DynInst, Oracle};
use reno_isa::{OpClass, Opcode, Program, Reg, STACK_TOP};
use reno_mem::{MemHierarchy, ServedBy};
use reno_uarch::{ControlKind, FrontEnd, StoreSets};
use std::collections::{HashSet, VecDeque};

/// Select-to-execute latency: 1 schedule + 2 register read.
const EXE_OFFSET: u64 = 3;
/// Rename1 to dispatch (into the issue queue): rename2 + dispatch.
const RENAME_TO_DISPATCH: u64 = 2;
/// Earliest select after rename: dispatch + 1.
const RENAME_TO_SELECT: u64 = 3;
/// Completion to retirement: complete stage + retire stage.
const COMPLETE_TO_RETIRE: u64 = 2;
/// I$ data to rename: 1 more I$ stage + decode + rename entry.
const ICACHE_TO_RENAME: u64 = 3;

#[derive(Clone, Copy, Debug)]
struct Fetched {
    d: DynInst,
    rename_ready: u64,
    mispredicted: bool,
    #[allow(dead_code)]
    from_replay: bool,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    d: DynInst,
    r: Renamed,
    rename_cycle: u64,
    mispredicted: bool,
    in_iq: bool,
    issued: bool,
    exec_start: u64,
    exec_done: bool,
    completed: bool,
    complete: u64,
    min_select: u64,
    addr_known: bool,
    served: Option<ServedBy>,
    /// Store sequence this load must wait for (store-sets prediction).
    ss_dep: Option<u64>,
    in_lq: bool,
    in_sq: bool,
    /// Producer of the last-arriving source (for critical-path analysis).
    dep_seq: Option<u64>,
    /// For integrated loads: pre-retirement re-execution has completed.
    reexec_done: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PortClass {
    Alu,
    Load,
    Store,
}

fn port_class(op: Opcode) -> PortClass {
    match op.class() {
        OpClass::Load => PortClass::Load,
        OpClass::Store => PortClass::Store,
        _ => PortClass::Alu,
    }
}

fn mem_range(d: &DynInst) -> (u64, u64) {
    let w = d.inst.op.mem_width().map_or(0, |w| w.bytes());
    (d.mem_addr, w)
}

fn ranges_overlap(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.0 + b.1 && b.0 < a.0 + a.1
}

/// Covering: does store range `s` fully cover load range `l`?
fn covers(s: (u64, u64), l: (u64, u64)) -> bool {
    s.0 <= l.0 && l.0 + l.1 <= s.0 + s.1
}

/// The cycle-level out-of-order core. See the crate docs for the model and
/// an end-to-end example.
pub struct Simulator<'p> {
    cfg: MachineConfig,
    oracle: Oracle<'p>,
    oracle_done: bool,
    replay: VecDeque<DynInst>,

    frontend: FrontEnd,
    fetch_buf: VecDeque<Fetched>,
    fetch_stalled_until: u64,
    waiting_branch: Option<u64>,
    halt_seen: bool,

    reno: Reno,
    rob: VecDeque<Slot>,
    iq_count: usize,
    lq_count: usize,
    sq_count: usize,

    preg_ready_sel: Vec<u64>,
    preg_complete: Vec<u64>,
    preg_val: Vec<i64>,
    preg_producer: Vec<u64>,

    mem: MemHierarchy,
    storesets: StoreSets,
    suppress_integration: HashSet<u64>,
    /// Retired stores awaiting their D$ write (the store queue's committed
    /// half). Drained at `store_ports` per cycle; integrated-load
    /// re-execution shares the same port (paper §2.2).
    store_drain: VecDeque<u64>,
    port_budget: usize,

    cycle: u64,
    retired: u64,
    halt_retired: bool,
    stats: SimStats,
    cpa: Vec<InstRecord>,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator over `program` with the given machine.
    pub fn new(program: &'p Program, cfg: MachineConfig) -> Simulator<'p> {
        Simulator::with_fuel(program, cfg, u64::MAX)
    }

    /// Like [`Simulator::new`] but caps the number of dynamic instructions
    /// simulated (the oracle stops feeding after `fuel` instructions).
    pub fn with_fuel(program: &'p Program, cfg: MachineConfig, fuel: u64) -> Simulator<'p> {
        let total = cfg.reno.total_pregs;
        let mut preg_val = vec![0i64; total];
        preg_val[Reg::SP.index()] = STACK_TOP as i64;
        Simulator {
            frontend: FrontEnd::new(cfg.bpred, cfg.btb, cfg.ras_entries),
            reno: Reno::new(cfg.reno),
            mem: MemHierarchy::new(cfg.hier),
            storesets: StoreSets::new(cfg.storesets),
            oracle: Oracle::new(program, fuel),
            oracle_done: false,
            replay: VecDeque::new(),
            fetch_buf: VecDeque::new(),
            fetch_stalled_until: 0,
            waiting_branch: None,
            halt_seen: false,
            rob: VecDeque::with_capacity(cfg.rob_size),
            iq_count: 0,
            lq_count: 0,
            sq_count: 0,
            preg_ready_sel: vec![0; total],
            preg_complete: vec![0; total],
            preg_val,
            preg_producer: vec![u64::MAX; total],
            suppress_integration: HashSet::new(),
            store_drain: VecDeque::new(),
            port_budget: 0,
            cycle: 0,
            retired: 0,
            halt_retired: false,
            stats: SimStats::default(),
            cpa: Vec::new(),
            cfg,
        }
    }

    /// Runs to completion (program halt / oracle exhaustion + pipeline
    /// drain), or at most `max_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant violation).
    pub fn run(mut self, max_cycles: u64) -> SimResult {
        let mut last_progress = (0u64, 0u64);
        while !self.finished() && self.cycle < max_cycles {
            self.port_budget = self.cfg.store_ports;
            self.retire_stage();
            self.reexec_stage();
            self.drain_stores();
            if self.finished() {
                break;
            }
            self.execute_stage();
            self.select_stage();
            self.rename_stage();
            self.fetch_stage();
            self.stats.iq_occ_sum += self.iq_count as u64;
            self.stats.rob_occ_sum += self.rob.len() as u64;
            self.cycle += 1;

            // Deadlock guard: something must retire every so often.
            if self.cycle - last_progress.0 > 100_000 {
                assert!(
                    self.retired > last_progress.1,
                    "pipeline deadlock at cycle {} (retired {}, rob {}, iq {})",
                    self.cycle,
                    self.retired,
                    self.rob.len(),
                    self.iq_count
                );
                last_progress = (self.cycle, self.retired);
            }
        }
        self.result()
    }

    fn finished(&self) -> bool {
        self.halt_retired
            || (self.oracle_done
                && self.rob.is_empty()
                && self.fetch_buf.is_empty()
                && self.replay.is_empty())
    }

    /// Pre-retirement re-execution of integrated loads (paper §2.2): each
    /// uses a spare slot on the D$ store retirement port, any time between
    /// integration and retirement. Verification failure squashes from the
    /// load and re-renames it with integration suppressed.
    fn reexec_stage(&mut self) {
        while self.port_budget > 0 {
            let Some(idx) = self
                .rob
                .iter()
                .position(|s| s.r.needs_load_reexec() && !s.reexec_done && s.completed)
            else {
                break;
            };
            // The shared register's value must have been produced already.
            let m = self.rob[idx]
                .r
                .dst
                .expect("integrated load has a mapping")
                .new;
            if self.preg_complete[m.preg.index()] > self.cycle {
                break; // oldest pending re-exec still waits for its producer
            }
            self.port_budget -= 1;
            let d = self.rob[idx].d;
            let expected = self.preg_val[m.preg.index()].wrapping_add(m.disp as i64);
            if expected != d.dst_val {
                self.stats.misintegrations += 1;
                self.suppress_integration.insert(d.seq);
                self.squash_from(idx, self.cycle + 1);
                continue;
            }
            self.stats.reexec_loads += 1;
            self.rob[idx].reexec_done = true;
            // The re-execution touches the cache like a normal access.
            self.mem.access_data(d.mem_addr, self.cycle, false);
        }
    }

    /// Writes committed stores to the D$ with whatever port bandwidth
    /// retirement left over this cycle.
    fn drain_stores(&mut self) {
        while self.port_budget > 0 {
            let Some(addr) = self.store_drain.pop_front() else {
                break;
            };
            self.mem.access_data(addr, self.cycle, true);
            self.sq_count -= 1;
            self.port_budget -= 1;
        }
    }

    fn result(self) -> SimResult {
        SimResult {
            cycles: self.cycle,
            retired: self.retired,
            stats: self.stats,
            reno: *self.reno.stats(),
            it: *self.reno.it_stats(),
            frontend: *self.frontend.stats(),
            caches: self.mem.cache_stats(),
            digest: self.oracle.cpu().state_digest(),
            checksum: self.oracle.cpu().checksum(),
            halted: self.oracle.halted(),
            cpa: self.cpa,
        }
    }

    // ------------------------------------------------------------- helpers

    fn rob_index_of_seq(&self, seq: u64) -> Option<usize> {
        let front = self.rob.front()?.d.seq;
        seq.checked_sub(front)
            .map(|i| i as usize)
            .filter(|&i| i < self.rob.len())
    }

    /// Execution latency of a non-load instruction, including the §3.3
    /// fusion cost model for displaced inputs.
    fn exec_latency(&self, s: &Slot) -> u64 {
        let op = s.d.inst.op;
        let base = match op.class() {
            OpClass::Mul => 3,
            _ => 1,
        };
        let d0 = s.r.srcs[0].map_or(0, |x| x.disp);
        let d1 = s.r.srcs[1].map_or(0, |x| x.disp);
        let fused = d0 != 0 || d1 != 0;
        if !fused {
            return base;
        }
        if self.cfg.fused_extra_cycle {
            return base + 1;
        }
        // Zero-cycle fusion via 3-input adders for additions, address
        // generation, branch compares and store data. Fusions into general
        // shifts and multiplies, and register-register operations with BOTH
        // inputs displaced, pay one cycle (paper §3.3).
        let shifty = matches!(
            op,
            Opcode::Sll | Opcode::Srl | Opcode::Sra | Opcode::Slli | Opcode::Srli | Opcode::Srai
        );
        let mul = op.class() == OpClass::Mul;
        let both = d0 != 0 && d1 != 0 && op.class() == OpClass::AluRR;
        if shifty || mul || both {
            base + 1
        } else {
            base
        }
    }

    fn consumer_ready_from_complete(&self, complete: u64) -> u64 {
        complete + 1 - EXE_OFFSET + (self.cfg.sched_loop - 1)
    }

    /// Extra address-generation latency for loads/stores with a displaced
    /// base. Normally zero (3-input AGU adders / sum-addressed caches); the
    /// §3.3 ablation charges one cycle for every fused operation.
    fn agen_fuse_penalty(&self, s: &Slot) -> u64 {
        let fused = s.r.srcs.iter().flatten().any(|x| x.disp != 0);
        u64::from(fused && self.cfg.fused_extra_cycle)
    }

    fn squash_from(&mut self, rob_idx: usize, refetch_at: u64) {
        let first_seq = self.rob[rob_idx].d.seq;
        let mut squashed: Vec<DynInst> = Vec::new();
        while self.rob.len() > rob_idx {
            let slot = self.rob.pop_back().expect("len checked");
            self.reno.rollback(&slot.r);
            if slot.in_iq {
                self.iq_count -= 1;
            }
            if slot.in_lq {
                self.lq_count -= 1;
            }
            if slot.in_sq {
                self.sq_count -= 1;
            }
            // Kill stale wakeup state for the squashed destination.
            if let Some(dst) = slot.r.dst {
                if slot.r.kind == reno_core::RenamedKind::Issued {
                    let p = dst.new.preg.index();
                    self.preg_ready_sel[p] = u64::MAX;
                    self.preg_complete[p] = u64::MAX;
                }
            }
            squashed.push(slot.d);
            self.stats.squashed += 1;
        }
        squashed.reverse();
        let buffered: Vec<DynInst> = self.fetch_buf.drain(..).map(|f| f.d).collect();
        for d in buffered.into_iter().rev() {
            self.replay.push_front(d);
        }
        for d in squashed.into_iter().rev() {
            self.replay.push_front(d);
        }
        self.storesets.squash_from(first_seq);
        if matches!(self.waiting_branch, Some(wb) if wb >= first_seq) {
            self.waiting_branch = None;
        }
        self.fetch_stalled_until = self.fetch_stalled_until.max(refetch_at);
        self.halt_seen = false;
    }

    // ------------------------------------------------------------- retire

    fn retire_stage(&mut self) {
        let mut n = 0;
        while n < self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.completed || head.complete + COMPLETE_TO_RETIRE > self.cycle {
                break;
            }
            let is_store = head.d.inst.op.is_store();
            let needs_reexec = head.r.needs_load_reexec();

            if needs_reexec {
                // Integrated loads retire only after their pre-retirement
                // re-execution has verified the shared value (reexec_stage).
                if !head.reexec_done {
                    break;
                }
            } else if is_store {
                // The store retires into the committed half of the store
                // queue and drains to the D$ in the background; its SQ entry
                // is released at drain time.
                self.store_drain.push_back(head.d.mem_addr);
            }

            let head = self.rob.pop_front().expect("nonempty");
            self.reno.retire(&head.r);
            if head.in_lq {
                self.lq_count -= 1;
            }
            if head.in_sq && !is_store {
                self.sq_count -= 1;
            }

            if self.cfg.collect_cpa {
                self.record_cpa(&head);
            }

            self.retired += 1;
            n += 1;
            if head.d.inst.op == Opcode::Halt {
                self.halt_retired = true;
                break;
            }
        }
    }

    fn record_cpa(&mut self, s: &Slot) {
        let dispatch = s.rename_cycle + RENAME_TO_DISPATCH;
        let (complete, dep, bucket) = if s.r.is_eliminated() {
            let m = s.r.dst.expect("eliminated instructions have mappings").new;
            let pc = self.preg_complete[m.preg.index()];
            let complete = if pc == u64::MAX {
                dispatch
            } else {
                pc.max(dispatch)
            };
            (
                complete,
                Some(self.preg_producer[m.preg.index()]),
                Bucket::AluExec,
            )
        } else {
            let bucket = match s.served {
                Some(ServedBy::Mem) => Bucket::LoadMem,
                Some(_) => Bucket::LoadExec,
                None => Bucket::AluExec,
            };
            (s.complete.max(dispatch), s.dep_seq, bucket)
        };
        self.cpa.push(InstRecord {
            seq: s.d.seq,
            dispatch,
            complete,
            commit: self.cycle,
            dep: dep.filter(|&d| d != u64::MAX),
            bucket,
            redirect: s.mispredicted,
        });
    }

    // ------------------------------------------------------------- execute

    fn execute_stage(&mut self) {
        // Gather this cycle's executers in program order; look them up by
        // sequence number because a violation squash may shift indices.
        let seqs: Vec<u64> = self
            .rob
            .iter()
            .filter(|s| s.issued && !s.exec_done && s.exec_start == self.cycle)
            .map(|s| s.d.seq)
            .collect();
        for seq in seqs {
            let Some(idx) = self.rob_index_of_seq(seq) else {
                continue;
            };
            if !self.rob[idx].issued || self.rob[idx].exec_done {
                continue; // replayed or squashed meanwhile
            }
            self.execute_one(idx);
        }
    }

    fn execute_one(&mut self, idx: usize) {
        let s = self.rob[idx];
        let exec_start = s.exec_start;

        // Verify operand availability (load-hit speculation check): any
        // source whose value is not actually ready forces a scheduler replay.
        let mut worst_ready = 0u64;
        let mut not_ready = false;
        for src in s.r.srcs.iter().flatten() {
            let p = src.preg.index();
            if self.preg_complete[p] > exec_start {
                not_ready = true;
            }
            worst_ready = worst_ready.max(self.preg_ready_sel[p]);
        }
        if not_ready {
            self.stats.replays += 1;
            let slot = &mut self.rob[idx];
            slot.issued = false;
            slot.in_iq = true;
            self.iq_count += 1;
            let min_sel = worst_ready.max(self.cycle + 1);
            let slot = &mut self.rob[idx];
            slot.min_select = min_sel;
            if let Some(d) = slot.r.dst {
                self.preg_ready_sel[d.new.preg.index()] = u64::MAX;
                self.preg_complete[d.new.preg.index()] = u64::MAX;
            }
            return;
        }

        // Record the last-arriving input's producer for CPA.
        let dep_seq =
            s.r.srcs
                .iter()
                .flatten()
                .max_by_key(|src| self.preg_complete[src.preg.index()])
                .map(|src| self.preg_producer[src.preg.index()]);
        self.rob[idx].dep_seq = dep_seq;

        let op = s.d.inst.op;
        match op.class() {
            OpClass::Load => self.execute_load(idx),
            OpClass::Store => self.execute_store(idx),
            _ => {
                let lat = self.exec_latency(&self.rob[idx]);
                let complete = exec_start + lat - 1;
                let slot = &mut self.rob[idx];
                slot.complete = complete;
                slot.completed = true;
                slot.exec_done = true;
                if slot.mispredicted {
                    // Branch resolves: fetch restarts down the correct path.
                    self.fetch_stalled_until = self.fetch_stalled_until.max(complete + 1);
                    self.waiting_branch = None;
                }
            }
        }
    }

    fn execute_load(&mut self, idx: usize) {
        let s = self.rob[idx];
        let exec_start = s.exec_start;
        let lrange = mem_range(&s.d);

        // Store-to-load forwarding: youngest older store with a known,
        // overlapping address.
        let mut forward: Option<(usize, bool)> = None; // (index, covers)
        for j in (0..idx).rev() {
            let st = &self.rob[j];
            if st.d.inst.op.is_store() && st.addr_known {
                let srange = mem_range(&st.d);
                if ranges_overlap(srange, lrange) {
                    forward = Some((j, covers(srange, lrange)));
                    break;
                }
            }
        }

        let agen_pen = self.agen_fuse_penalty(&s);
        let hit_complete = exec_start + agen_pen + self.cfg.hier.l1d.hit_latency;
        let (complete, served) = match forward {
            Some((_, true)) => {
                self.stats.store_forwards += 1;
                (hit_complete, ServedBy::L1)
            }
            Some((j, false)) => {
                // Partial overlap: wait for the store to leave the window,
                // modelled as a retry after the store's expected retirement.
                let st_complete = if self.rob[j].completed {
                    self.rob[j].complete
                } else {
                    self.cycle + 8
                };
                let retry = st_complete + COMPLETE_TO_RETIRE + 1;
                let slot = &mut self.rob[idx];
                slot.issued = false;
                slot.in_iq = true;
                self.iq_count += 1;
                slot.min_select = retry.max(self.cycle + 1);
                if let Some(d) = slot.r.dst {
                    self.preg_ready_sel[d.new.preg.index()] = u64::MAX;
                    self.preg_complete[d.new.preg.index()] = u64::MAX;
                }
                self.stats.replays += 1;
                return;
            }
            None => {
                let (done, served) =
                    self.mem
                        .access_data(s.d.mem_addr, exec_start + agen_pen, false);
                (done, served)
            }
        };

        let slot = &mut self.rob[idx];
        slot.complete = complete;
        slot.completed = true;
        slot.exec_done = true;
        slot.addr_known = true;
        slot.served = Some(served);
        if let Some(d) = slot.r.dst {
            let p = d.new.preg.index();
            self.preg_complete[p] = complete;
            self.preg_ready_sel[p] = self.consumer_ready_from_complete(complete);
        }
    }

    fn execute_store(&mut self, idx: usize) {
        let s = self.rob[idx];
        let agen_pen = self.agen_fuse_penalty(&s);
        {
            let slot = &mut self.rob[idx];
            slot.complete = s.exec_start + agen_pen;
            slot.completed = true;
            slot.exec_done = true;
            slot.addr_known = true;
        }
        self.storesets.store_executed(s.d.pc as u64, s.d.seq);

        // Memory-ordering violation check: a younger load already executed
        // with an overlapping address, whose youngest older known store is
        // this one, read stale data.
        let srange = mem_range(&s.d);
        let mut violate: Option<usize> = None;
        'outer: for j in idx + 1..self.rob.len() {
            let ld = &self.rob[j];
            if !ld.d.inst.op.is_load() || !ld.exec_done || ld.r.is_eliminated() {
                continue;
            }
            let lrange = mem_range(&ld.d);
            if !ranges_overlap(srange, lrange) {
                continue;
            }
            // Did an even younger (but still older-than-load) store satisfy it?
            for k in (idx + 1..j).rev() {
                let mid = &self.rob[k];
                if mid.d.inst.op.is_store()
                    && mid.addr_known
                    && ranges_overlap(mem_range(&mid.d), lrange)
                {
                    continue 'outer;
                }
            }
            violate = Some(j);
            break;
        }
        if let Some(j) = violate {
            self.stats.violations += 1;
            self.storesets
                .train_violation(self.rob[j].d.pc as u64, s.d.pc as u64);
            self.squash_from(j, self.cycle + 1);
        }
    }

    // ------------------------------------------------------------- select

    fn select_stage(&mut self) {
        let mut total = self.cfg.issue_width;
        let mut alu = self.cfg.alu_ports;
        let mut load = self.cfg.load_ports;
        let mut store = self.cfg.store_ports;

        for i in 0..self.rob.len() {
            if total == 0 {
                break;
            }
            let s = &self.rob[i];
            if !s.in_iq || s.issued || s.min_select > self.cycle {
                continue;
            }
            let pc_class = port_class(s.d.inst.op);
            let port_free = match pc_class {
                PortClass::Alu => alu > 0,
                PortClass::Load => load > 0,
                PortClass::Store => store > 0,
            };
            if !port_free {
                continue;
            }
            // All register sources must have been woken.
            let ready =
                s.r.srcs
                    .iter()
                    .flatten()
                    .all(|src| self.preg_ready_sel[src.preg.index()] <= self.cycle);
            if !ready {
                continue;
            }
            // Store-sets: a load predicted to conflict waits until the
            // offending store's address is known.
            if let Some(dep) = s.ss_dep {
                if let Some(sidx) = self.rob_index_of_seq(dep) {
                    if !self.rob[sidx].addr_known {
                        continue;
                    }
                }
            }

            // Select.
            self.stats.issued += 1;
            total -= 1;
            match pc_class {
                PortClass::Alu => alu -= 1,
                PortClass::Load => load -= 1,
                PortClass::Store => store -= 1,
            }
            let exec_start = self.cycle + EXE_OFFSET;
            let agen_pen = self.agen_fuse_penalty(&self.rob[i]);
            let (dst, optimistic) = {
                let slot = &mut self.rob[i];
                slot.issued = true;
                slot.in_iq = false;
                slot.exec_start = exec_start;
                let optimistic = match slot.d.inst.op.class() {
                    OpClass::Load => Some(exec_start + agen_pen + self.cfg.hier.l1d.hit_latency),
                    OpClass::Store => None,
                    _ => None,
                };
                (slot.r.dst, optimistic)
            };
            self.iq_count -= 1;

            if let Some(d) = dst {
                let p = d.new.preg.index();
                let complete = match optimistic {
                    Some(c) => c, // load: speculative hit wakeup
                    None => exec_start + self.exec_latency(&self.rob[i]) - 1,
                };
                self.preg_complete[p] = complete;
                self.preg_ready_sel[p] = self.consumer_ready_from_complete(complete);
            }
        }
    }

    // ------------------------------------------------------------- rename

    fn rename_stage(&mut self) {
        if self.fetch_buf.is_empty() {
            return;
        }
        self.reno.begin_group();
        let mut n = 0;
        while n < self.cfg.rename_width {
            let Some(front) = self.fetch_buf.front() else {
                break;
            };
            if front.rename_ready > self.cycle {
                break;
            }
            if self.rob.len() >= self.cfg.rob_size {
                self.stats.queue_stall_cycles += u64::from(n == 0);
                break;
            }
            let f = *front;
            let suppressed = self.suppress_integration.remove(&f.d.seq);
            let renamed = match self.reno.rename_with(f.d.pc as u64, f.d.inst, !suppressed) {
                Ok(r) => r,
                Err(_) => {
                    if suppressed {
                        self.suppress_integration.insert(f.d.seq);
                    }
                    self.stats.preg_stall_cycles += u64::from(n == 0);
                    break; // out of physical registers: stall
                }
            };

            let is_load = f.d.inst.op.is_load();
            let is_store = f.d.inst.op.is_store();
            let needs_iq = !renamed.is_eliminated();
            let needs_lq = needs_iq && is_load;
            let needs_sq = is_store;
            if (needs_iq && self.iq_count >= self.cfg.iq_size)
                || (needs_lq && self.lq_count >= self.cfg.lq_size)
                || (needs_sq && self.sq_count >= self.cfg.sq_size)
            {
                // Structural hazard discovered post-rename: undo and retry
                // next cycle.
                self.reno.rollback(&renamed);
                self.reno.undo_rename_stats(&renamed);
                if suppressed {
                    self.suppress_integration.insert(f.d.seq);
                }
                self.stats.queue_stall_cycles += u64::from(n == 0);
                break;
            }
            self.fetch_buf.pop_front();

            // Register bookkeeping for issued destinations.
            if let (reno_core::RenamedKind::Issued, Some(d)) = (renamed.kind, renamed.dst) {
                let p = d.new.preg.index();
                self.preg_ready_sel[p] = u64::MAX;
                self.preg_complete[p] = u64::MAX;
                self.preg_val[p] = f.d.dst_val;
                self.preg_producer[p] = f.d.seq;
            }

            // Memory dependence prediction.
            let ss_dep = if needs_lq {
                self.storesets.load_dependence(f.d.pc as u64)
            } else {
                if is_store {
                    self.storesets.rename_store(f.d.pc as u64, f.d.seq);
                }
                None
            };

            let eliminated = renamed.is_eliminated();
            if needs_iq {
                self.iq_count += 1;
            }
            if needs_lq {
                self.lq_count += 1;
            }
            if needs_sq {
                self.sq_count += 1;
            }

            self.rob.push_back(Slot {
                d: f.d,
                r: renamed,
                rename_cycle: self.cycle,
                mispredicted: f.mispredicted,
                in_iq: needs_iq,
                issued: false,
                exec_start: u64::MAX,
                exec_done: false,
                completed: eliminated,
                complete: self.cycle + 1, // eliminated: done at rename2
                min_select: self.cycle + RENAME_TO_SELECT,
                addr_known: false,
                served: None,
                ss_dep,
                in_lq: needs_lq,
                in_sq: needs_sq,
                dep_seq: None,
                reexec_done: false,
            });
            n += 1;
        }
    }

    // ------------------------------------------------------------- fetch

    fn next_feed(&mut self) -> Option<(DynInst, bool)> {
        if let Some(d) = self.replay.pop_front() {
            return Some((d, true));
        }
        if self.oracle_done || self.halt_seen {
            return None;
        }
        match self.oracle.next() {
            Some(d) => Some((d, false)),
            None => {
                self.oracle_done = true;
                None
            }
        }
    }

    fn classify_control(d: &DynInst) -> ControlKind {
        match d.inst.op {
            Opcode::Br => ControlKind::DirectJump,
            Opcode::Jal => ControlKind::Call,
            Opcode::Jr => {
                if d.inst.rs1 == Reg::RA {
                    ControlKind::Return
                } else {
                    ControlKind::IndirectJump
                }
            }
            Opcode::Jalr => ControlKind::IndirectCall,
            _ => ControlKind::Cond,
        }
    }

    fn fetch_stage(&mut self) {
        if self.waiting_branch.is_some() || self.cycle < self.fetch_stalled_until {
            return;
        }
        if self.fetch_buf.len() >= self.cfg.fetch_width * 4 {
            return;
        }
        let line_bytes = self.cfg.hier.l1i.line_bytes as u64;
        let mut cur_line: Option<u64> = None;
        let mut ic_done = self.cycle;
        let mut taken = 0;
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width {
            let Some((d, from_replay)) = self.next_feed() else {
                break;
            };
            let addr = Program::inst_addr(d.pc);
            let line = addr / line_bytes;
            if cur_line != Some(line) {
                cur_line = Some(line);
                let (done, _) = self.mem.access_inst(addr, self.cycle);
                ic_done = ic_done.max(done);
            }
            let mut mispredicted = false;
            if d.inst.op.is_control() && !from_replay {
                let kind = Self::classify_control(&d);
                let ok = self
                    .frontend
                    .process(d.pc as u64, kind, d.taken, d.next_pc as u64);
                mispredicted = !ok;
            }
            let rename_ready = ic_done + ICACHE_TO_RENAME;
            self.fetch_buf.push_back(Fetched {
                d,
                rename_ready,
                mispredicted,
                from_replay,
            });
            fetched += 1;

            if d.inst.op == Opcode::Halt {
                self.halt_seen = true;
                break;
            }
            if mispredicted {
                self.waiting_branch = Some(d.seq);
                break;
            }
            if d.redirects() {
                taken += 1;
                if taken >= 2 {
                    break; // fetch past at most one taken branch per cycle
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;
    use reno_core::RenoConfig;
    use reno_func::run_to_completion;
    use reno_isa::Asm;

    fn loop_program(iters: i64) -> Program {
        let mut a = Asm::named("loop");
        a.li(Reg::T0, iters);
        a.li(Reg::T1, 0);
        a.label("loop");
        a.add(Reg::T1, Reg::T1, Reg::T0);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "loop");
        a.out(Reg::T1);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn straight_line_retires_everything() {
        let mut a = Asm::new();
        for i in 0..20 {
            a.addi(Reg::T0, Reg::T0, i as i16);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let r = Simulator::new(&p, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 20);
        assert!(r.halted);
        assert_eq!(r.retired, 21);
        assert!(r.cycles > 10, "pipeline depth is visible");
    }

    #[test]
    fn timing_sim_matches_functional_results() {
        let p = loop_program(500);
        let (cpu, fr) = run_to_completion(&p, 1 << 20).unwrap();
        for cfg in [
            RenoConfig::baseline(),
            RenoConfig::me_only(),
            RenoConfig::cf_me(),
            RenoConfig::reno(),
            RenoConfig::reno_full_integration(),
            RenoConfig::full_integration_only(),
        ] {
            let r = Simulator::new(&p, MachineConfig::four_wide(cfg)).run(1 << 22);
            assert!(r.halted, "{cfg:?}");
            assert_eq!(r.retired, fr.executed, "{cfg:?}");
            assert_eq!(r.digest, cpu.state_digest(), "{cfg:?}");
            assert_eq!(r.checksum, fr.checksum, "{cfg:?}");
        }
    }

    #[test]
    fn reno_eliminates_and_speeds_up_dependent_loop() {
        let p = loop_program(2000);
        let base =
            Simulator::new(&p, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 22);
        let reno = Simulator::new(&p, MachineConfig::four_wide(RenoConfig::reno())).run(1 << 22);
        assert!(
            reno.reno.eliminated() > 1500,
            "loop addi folds: {:?}",
            reno.reno
        );
        assert!(
            reno.cycles < base.cycles,
            "RENO collapses the addi off the critical path: {} vs {}",
            reno.cycles,
            base.cycles
        );
    }

    #[test]
    fn branch_mispredicts_cost_cycles() {
        // A data-dependent unpredictable branch pattern (LCG parity).
        let mut a = Asm::new();
        a.li(Reg::T0, 200); // iterations
        a.li(Reg::T1, 12345); // lcg state
        a.li(Reg::T3, 0);
        a.label("loop");
        a.li(Reg::T2, 1103515245 % 30000);
        a.mul(Reg::T1, Reg::T1, Reg::T2);
        a.addi(Reg::T1, Reg::T1, 12345);
        a.srli(Reg::T2, Reg::T1, 17); // high bits: no short period
        a.andi(Reg::T2, Reg::T2, 1);
        a.beqz(Reg::T2, "skip");
        a.addi(Reg::T3, Reg::T3, 1);
        a.label("skip");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "loop");
        a.out(Reg::T3);
        a.halt();
        let p = a.assemble().unwrap();
        let r = Simulator::new(&p, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 22);
        assert!(r.halted);
        assert!(
            r.frontend.cond_wrong > 20,
            "LCG parity defeats the predictor: {:?}",
            r.frontend
        );
    }

    #[test]
    fn memory_violation_squash_and_storeset_training() {
        // The store's address depends on a cold-miss load; the younger load
        // to the same address issues first and must be squashed.
        let mut a = Asm::new();
        let slot = a.words("slot", &[0x0001_0000 + 64]); // holds a pointer
        let _tgt = a.zeros("tgt", 16);
        a.li(Reg::T5, 99);
        a.li(Reg::A0, slot as i64);
        a.li(Reg::T4, 0);
        a.li(Reg::T6, 20);
        a.label("loop");
        a.ld(Reg::T0, Reg::A0, 0); // pointer load (cold miss first time)
        a.st(Reg::T5, Reg::T0, 0); // store through pointer
        a.li(Reg::T1, 0x0001_0000 + 64);
        a.ld(Reg::T2, Reg::T1, 0); // same address, no name dependence
        a.add(Reg::T4, Reg::T4, Reg::T2);
        a.addi(Reg::T6, Reg::T6, -1);
        a.bnez(Reg::T6, "loop");
        a.out(Reg::T4);
        a.halt();
        let p = a.assemble().unwrap();
        let (cpu, _) = run_to_completion(&p, 1 << 20).unwrap();
        let r = Simulator::new(&p, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 22);
        assert!(r.stats.violations >= 1, "violation detected: {:?}", r.stats);
        assert_eq!(r.digest, cpu.state_digest(), "squash preserves correctness");
        assert!(
            r.stats.violations < 18,
            "store sets learn to serialize the pair: {:?}",
            r.stats
        );
    }

    #[test]
    fn misintegration_squashes_and_recovers() {
        // store r1 -> 0(sp); alias store r2 -> the same byte address through
        // a *computed* register (a different physical name, so the IT cannot
        // see the aliasing); reload 0(sp) integrates with the first store's
        // reverse entry and must fail verification.
        let mut a = Asm::new();
        a.li(Reg::T1, 111);
        a.li(Reg::T2, 222);
        a.li(Reg::T4, 8);
        a.add(Reg::T0, Reg::SP, Reg::T4); // t0 = sp + 8 (fresh physical name)
        a.st(Reg::T1, Reg::SP, 0);
        a.st(Reg::T2, Reg::T0, -8); // same address, different name
        a.ld(Reg::T3, Reg::SP, 0); // truth: 222; IT says p(T1) = 111
        a.out(Reg::T3);
        a.halt();
        let p = a.assemble().unwrap();
        let (cpu, _) = run_to_completion(&p, 1 << 20).unwrap();
        let r = Simulator::new(&p, MachineConfig::four_wide(RenoConfig::reno())).run(1 << 22);
        assert!(r.stats.misintegrations >= 1, "{:?}", r.stats);
        assert_eq!(
            r.digest,
            cpu.state_digest(),
            "re-execution preserves correctness"
        );
    }

    #[test]
    fn two_cycle_scheduler_slows_dependent_code() {
        let p = loop_program(1000);
        let tight =
            Simulator::new(&p, MachineConfig::four_wide(RenoConfig::baseline())).run(1 << 22);
        let loose = Simulator::new(
            &p,
            MachineConfig::four_wide(RenoConfig::baseline()).with_sched_loop(2),
        )
        .run(1 << 22);
        assert!(
            loose.cycles > tight.cycles,
            "{} vs {}",
            loose.cycles,
            tight.cycles
        );
    }

    #[test]
    fn small_register_file_stalls_baseline_more_than_reno() {
        let p = loop_program(1500);
        let base_small = Simulator::new(
            &p,
            MachineConfig::four_wide(RenoConfig::baseline()).with_pregs(48),
        )
        .run(1 << 22);
        let reno_small = Simulator::new(
            &p,
            MachineConfig::four_wide(RenoConfig::reno()).with_pregs(48),
        )
        .run(1 << 22);
        assert!(base_small.stats.preg_stall_cycles > 0);
        assert!(
            reno_small.stats.preg_stall_cycles < base_small.stats.preg_stall_cycles,
            "eliminated instructions allocate no registers"
        );
    }

    #[test]
    fn cpa_records_cover_retired_stream() {
        let p = loop_program(100);
        let r = Simulator::new(
            &p,
            MachineConfig::four_wide(RenoConfig::baseline()).with_cpa(),
        )
        .run(1 << 22);
        assert_eq!(r.cpa.len() as u64, r.retired);
        let b = reno_cpa::analyze(&r.cpa, 128);
        assert!(b.total() > 0);
    }

    #[test]
    fn fuel_limited_run_drains_cleanly() {
        let p = loop_program(100_000);
        let r = Simulator::with_fuel(&p, MachineConfig::four_wide(RenoConfig::reno()), 5_000)
            .run(1 << 22);
        assert!(!r.halted);
        assert_eq!(r.retired, 5_000);
    }
}
