use reno_core::{ItStats, RenoStats};
use reno_cpa::InstRecord;
use reno_mem::{CacheStats, HierarchyStats};
use reno_trace::PipelineTrace;
use reno_uarch::FrontEndStats;

/// Event counters accumulated during a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Scheduler replays caused by load-hit misspeculation.
    pub replays: u64,
    /// Memory-ordering violation squashes.
    pub violations: u64,
    /// Integrated loads whose retirement re-execution failed (squash).
    pub misintegrations: u64,
    /// Integrated loads re-executed successfully at retirement.
    pub reexec_loads: u64,
    /// Instructions squashed (all causes).
    pub squashed: u64,
    /// Cycles rename stalled for a free physical register.
    pub preg_stall_cycles: u64,
    /// Cycles rename stalled for ROB/IQ/LQ/SQ space.
    pub queue_stall_cycles: u64,
    /// Store-to-load forwards in the LSQ.
    pub store_forwards: u64,
    /// Instructions renamed from the squash-replay path (refetched after a
    /// violation or misintegration squash).
    pub replay_renamed: u64,
    /// Instructions selected for issue (includes replayed re-issues).
    pub issued: u64,
    /// Sum over cycles of issue-queue occupancy (for average occupancy).
    pub iq_occ_sum: u64,
    /// Sum over cycles of ROB occupancy.
    pub rob_occ_sum: u64,
}

/// A counter snapshot taken mid-run at a retired-instruction boundary
/// (see [`crate::Simulator::with_measure_window`]). The sampling subsystem
/// subtracts two marks to obtain the cycles and event counts of a detailed
/// measurement interval with the pipeline in full flight at both edges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampleMark {
    /// Cycle the mark was taken (the boundary instruction has retired).
    pub cycles: u64,
    /// Instructions retired so far.
    pub retired: u64,
    /// Event counters so far.
    pub stats: SimStats,
    /// RENO elimination counters so far.
    pub reno: RenoStats,
}

/// The result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Total cycles.
    pub cycles: u64,
    /// Instructions retired (equals the functional dynamic count).
    pub retired: u64,
    /// Event counters.
    pub stats: SimStats,
    /// RENO elimination statistics.
    pub reno: RenoStats,
    /// Integration table statistics.
    pub it: ItStats,
    /// Front-end prediction statistics.
    pub frontend: FrontEndStats,
    /// Cache statistics: (I$, D$, L2).
    pub caches: (CacheStats, CacheStats, CacheStats),
    /// Hierarchy-wide memory statistics (MSHR allocations, merges, queueing).
    pub hier: HierarchyStats,
    /// Architectural state digest of the completed program (for
    /// functional-vs-timing equivalence checks).
    pub digest: u64,
    /// Output checksum of the program.
    pub checksum: u64,
    /// Whether the program ran to its `halt`.
    pub halted: bool,
    /// Per-instruction records for critical-path analysis (empty unless
    /// enabled in the configuration).
    pub cpa: Vec<InstRecord>,
    /// Snapshot at the measure-window start boundary, if one was requested
    /// with [`crate::Simulator::with_measure_window`] and reached.
    pub mark_start: Option<SampleMark>,
    /// Snapshot at the measure-window end boundary, if reached before the
    /// program (or the fuel) ran out.
    pub mark_end: Option<SampleMark>,
    /// Structured pipeline event trace (present only when
    /// `MachineConfig::trace` was set; see `reno-trace` for the export).
    pub trace: Option<Box<PipelineTrace>>,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Percent of dynamic instructions eliminated or folded by RENO.
    pub fn elimination_pct(&self) -> f64 {
        self.reno.elimination_pct()
    }

    /// The measured window as a `(start, end)` mark pair, if a measure
    /// window was requested and its start boundary was reached. When the run
    /// ended (halt or fuel exhaustion) before the end boundary, the final
    /// totals stand in for the end mark — the window is then clipped and
    /// includes the pipeline drain.
    pub fn measured(&self) -> Option<(SampleMark, SampleMark)> {
        let start = self.mark_start?;
        let end = self.mark_end.unwrap_or(SampleMark {
            cycles: self.cycles,
            retired: self.retired,
            stats: self.stats,
            reno: self.reno,
        });
        Some((start, end))
    }

    /// Speedup of this run relative to `baseline`, in percent
    /// (positive = faster).
    pub fn speedup_pct_vs(&self, baseline: &SimResult) -> f64 {
        assert_eq!(
            self.retired, baseline.retired,
            "speedup requires identical work"
        );
        (baseline.cycles as f64 / self.cycles as f64 - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(cycles: u64, retired: u64) -> SimResult {
        SimResult {
            cycles,
            retired,
            stats: SimStats::default(),
            reno: RenoStats::default(),
            it: ItStats::default(),
            frontend: FrontEndStats::default(),
            caches: Default::default(),
            hier: HierarchyStats::default(),
            digest: 0,
            checksum: 0,
            halted: true,
            cpa: Vec::new(),
            mark_start: None,
            mark_end: None,
            trace: None,
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = blank(2000, 1000);
        let fast = blank(1600, 1000);
        assert!((base.ipc() - 0.5).abs() < 1e-12);
        assert!((fast.speedup_pct_vs(&base) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn measured_clips_to_final_totals_without_end_mark() {
        let mut r = blank(5000, 4000);
        assert!(r.measured().is_none(), "no window requested");
        r.mark_start = Some(SampleMark {
            cycles: 1000,
            retired: 900,
            ..Default::default()
        });
        let (s, e) = r.measured().expect("start mark present");
        assert_eq!((s.cycles, s.retired), (1000, 900));
        assert_eq!((e.cycles, e.retired), (5000, 4000), "clipped to totals");
        r.mark_end = Some(SampleMark {
            cycles: 3000,
            retired: 2900,
            ..Default::default()
        });
        let (_, e) = r.measured().expect("both marks present");
        assert_eq!((e.cycles, e.retired), (3000, 2900));
    }

    #[test]
    #[should_panic(expected = "identical work")]
    fn speedup_rejects_mismatched_runs() {
        let a = blank(100, 10);
        let b = blank(100, 20);
        let _ = a.speedup_pct_vs(&b);
    }
}
