use reno_core::RenoConfig;
use reno_mem::HierarchyConfig;
use reno_uarch::{BpredConfig, BtbConfig, StoreSetConfig};

/// Full machine configuration.
///
/// [`MachineConfig::four_wide`] is the paper's baseline; the builder-style
/// `with_*` methods produce the evaluation's variants (register file sweeps,
/// issue-width reductions, 2-cycle scheduling loop, fusion-cost ablation).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub rename_width: usize,
    /// Total instructions issued per cycle.
    pub issue_width: usize,
    /// Integer ALU ports (multiplies share them).
    pub alu_ports: usize,
    /// Load issue ports.
    pub load_ports: usize,
    /// Store (AGU) issue ports; also the retirement D$ write ports shared
    /// with integrated-load re-execution.
    pub store_ports: usize,
    /// Instructions retired per cycle.
    pub commit_width: usize,
    /// Reorder buffer entries.
    pub rob_size: usize,
    /// Issue queue entries.
    pub iq_size: usize,
    /// Load queue entries.
    pub lq_size: usize,
    /// Store queue entries.
    pub sq_size: usize,
    /// Wakeup-select loop latency in cycles (1 = back-to-back dependent
    /// single-cycle ops; 2 = the "loose loop" of Fig 12).
    pub sched_loop: u64,
    /// Ablation: charge one extra cycle for *every* fused operation
    /// (paper §3.3: RENO_CF loses only 20–25% of its advantage).
    pub fused_extra_cycle: bool,
    /// The RENO renamer configuration (includes the physical register count).
    pub reno: RenoConfig,
    /// Memory hierarchy configuration.
    pub hier: HierarchyConfig,
    /// Branch direction predictor.
    pub bpred: BpredConfig,
    /// Branch target buffer.
    pub btb: BtbConfig,
    /// Return address stack entries.
    pub ras_entries: usize,
    /// Store-sets memory dependence predictor.
    pub storesets: StoreSetConfig,
    /// Collect per-instruction records for critical-path analysis.
    pub collect_cpa: bool,
    /// Use the reference whole-ROB polling scheduler instead of the
    /// event-driven one. Timing is identical by construction (enforced by
    /// the `sched_equivalence` differential tests); the naive path exists
    /// only as that test's baseline and for debugging.
    pub naive_sched: bool,
    /// Feed the pipeline through the block-batched oracle refill (default)
    /// instead of per-instruction `Oracle::next` calls. Timing and counters
    /// are identical by construction (enforced by the `feed_equivalence`
    /// differential tests); the per-instruction path exists only as that
    /// test's baseline and for debugging. The `RENO_FEED` environment
    /// variable (`batched` / `perinst`) overrides this field, so CI can
    /// force either path through existing binaries.
    pub batched_feed: bool,
    /// Record a structured pipeline event trace (fetch/rename/issue/
    /// complete/retire/squash per dynamic instruction, plus per-cycle
    /// occupancy samples) for export as Chrome trace-event JSON via
    /// `reno-trace`. Zero-cost when off: the sink is `None` and the hot
    /// loop only ever checks the option. Timing and counters are identical
    /// either way (enforced by the `trace_differential` tests).
    pub trace: bool,
}

impl MachineConfig {
    /// The paper's 4-wide baseline: fetch/rename/commit 4, issue up to 4
    /// (3 integer + 1 load + 1 store ports), 128 ROB / 50 IQ / 48 LQ / 24 SQ,
    /// 160 physical registers, 1-cycle scheduling loop.
    pub fn four_wide(reno: RenoConfig) -> MachineConfig {
        MachineConfig {
            fetch_width: 4,
            rename_width: 4,
            issue_width: 4,
            alu_ports: 3,
            load_ports: 1,
            store_ports: 1,
            commit_width: 4,
            rob_size: 128,
            iq_size: 50,
            lq_size: 48,
            sq_size: 24,
            sched_loop: 1,
            fused_extra_cycle: false,
            reno,
            hier: HierarchyConfig::default(),
            bpred: BpredConfig::default(),
            btb: BtbConfig::default(),
            ras_entries: 32,
            storesets: StoreSetConfig::default(),
            collect_cpa: false,
            naive_sched: false,
            batched_feed: true,
            trace: false,
        }
    }

    /// The paper's 6-wide configuration: issue up to 6 (4 integer + 2 loads
    /// + 1 store).
    pub fn six_wide(reno: RenoConfig) -> MachineConfig {
        MachineConfig {
            fetch_width: 6,
            rename_width: 6,
            issue_width: 6,
            alu_ports: 4,
            load_ports: 2,
            store_ports: 1,
            commit_width: 6,
            ..MachineConfig::four_wide(reno)
        }
    }

    /// Fig 11 (bottom): 2 integer ALUs, total issue width 3 ("i2t3").
    pub fn with_issue_i2t3(mut self) -> MachineConfig {
        self.alu_ports = 2;
        self.issue_width = 3;
        self
    }

    /// Fig 11 (bottom): 2 integer ALUs, total issue width 2 ("i2t2").
    pub fn with_issue_i2t2(mut self) -> MachineConfig {
        self.alu_ports = 2;
        self.issue_width = 2;
        self
    }

    /// Fig 11 (top): shrink the physical register file.
    pub fn with_pregs(mut self, n: usize) -> MachineConfig {
        self.reno.total_pregs = n;
        self
    }

    /// Fig 12: a 2-cycle wakeup-select loop.
    pub fn with_sched_loop(mut self, cycles: u64) -> MachineConfig {
        self.sched_loop = cycles;
        self
    }

    /// §3.3 ablation: every fused operation pays one extra cycle.
    pub fn with_fused_extra_cycle(mut self) -> MachineConfig {
        self.fused_extra_cycle = true;
        self
    }

    /// Enable critical-path record collection (Fig 9).
    pub fn with_cpa(mut self) -> MachineConfig {
        self.collect_cpa = true;
        self
    }

    /// Use the reference whole-ROB polling scheduler (differential-testing
    /// baseline for the event-driven one; see [`MachineConfig::naive_sched`]).
    pub fn with_naive_sched(mut self) -> MachineConfig {
        self.naive_sched = true;
        self
    }

    /// Feed the pipeline per instruction through `Oracle::next`
    /// (differential-testing baseline for the block-batched refill feed;
    /// see [`MachineConfig::batched_feed`]).
    pub fn with_per_inst_feed(mut self) -> MachineConfig {
        self.batched_feed = false;
        self
    }

    /// Record a structured pipeline event trace for Chrome/Perfetto export
    /// (see [`MachineConfig::trace`]).
    pub fn with_trace(mut self) -> MachineConfig {
        self.trace = true;
        self
    }

    /// Swap in a different RENO configuration, keeping the machine identical.
    pub fn with_reno(mut self, reno: RenoConfig) -> MachineConfig {
        let pregs = self.reno.total_pregs;
        self.reno = reno;
        self.reno.total_pregs = pregs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_wide_matches_paper() {
        let c = MachineConfig::four_wide(RenoConfig::baseline());
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.iq_size, 50);
        assert_eq!(c.lq_size, 48);
        assert_eq!(c.sq_size, 24);
        assert_eq!(c.reno.total_pregs, 160);
        assert_eq!((c.alu_ports, c.load_ports, c.store_ports), (3, 1, 1));
    }

    #[test]
    fn six_wide_ports() {
        let c = MachineConfig::six_wide(RenoConfig::reno());
        assert_eq!((c.issue_width, c.alu_ports, c.load_ports), (6, 4, 2));
        assert_eq!(c.rob_size, 128, "window sizes unchanged");
    }

    #[test]
    fn builders_compose() {
        let c = MachineConfig::four_wide(RenoConfig::reno())
            .with_issue_i2t2()
            .with_pregs(96)
            .with_sched_loop(2);
        assert_eq!((c.alu_ports, c.issue_width), (2, 2));
        assert_eq!(c.reno.total_pregs, 96);
        assert_eq!(c.sched_loop, 2);
    }

    #[test]
    fn with_reno_preserves_pregs() {
        let c = MachineConfig::four_wide(RenoConfig::baseline())
            .with_pregs(112)
            .with_reno(RenoConfig::reno());
        assert_eq!(c.reno.total_pregs, 112);
        assert!(c.reno.const_fold);
    }
}
