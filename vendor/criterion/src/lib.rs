//! Offline, lightweight stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! exposing the API subset this workspace uses.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors this drop-in. It keeps criterion's *interface* —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] — but replaces the statistical machinery with a simple
//! timed loop: each benchmark is warmed up briefly, then run for a bounded
//! number of batches, and the best observed ns/iteration is printed. That is
//! enough to compare hot-path changes locally and to keep `cargo bench`
//! (and `cargo test`, which also runs non-harness bench targets) fast and
//! dependency-free; it is **not** a substitute for criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting
/// the benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target wall-clock budget per benchmark (warmup plus measurement).
const BUDGET: Duration = Duration::from_millis(200);

/// Maximum number of timed batches per benchmark.
const MAX_BATCHES: u32 = 10;

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark of the group over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    best_ns_per_iter: Option<f64>,
    total_iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the best observed time per call.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One untimed call to warm caches and page in code.
        black_box(f());
        let started = Instant::now();
        let mut batch_size = 1u64;
        for _ in 0..MAX_BATCHES {
            let t0 = Instant::now();
            for _ in 0..batch_size {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            self.total_iters += batch_size;
            let per_iter = elapsed.as_nanos() as f64 / batch_size as f64;
            if self.best_ns_per_iter.map_or(true, |b| per_iter < b) {
                self.best_ns_per_iter = Some(per_iter);
            }
            if started.elapsed() > BUDGET {
                break;
            }
            // Grow batches until one takes a measurable slice of the budget.
            if elapsed < BUDGET / 20 {
                batch_size = batch_size.saturating_mul(4);
            }
        }
    }

    fn report(&self, id: &str) {
        match self.best_ns_per_iter {
            Some(ns) => println!(
                "bench: {id:<40} {ns:>14.1} ns/iter ({} iters)",
                self.total_iters
            ),
            None => println!("bench: {id:<40} (no measurement)"),
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Non-harness bench targets are also executed by `cargo test`
            // with libtest-style flags; this stand-in ignores all arguments.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }
}
