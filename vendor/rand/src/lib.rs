//! Offline, deterministic stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, exposing exactly the API subset this workspace uses.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors this drop-in: [`rngs::SmallRng`] (a SplitMix64 generator),
//! [`rngs::mock::StepRng`], and the [`Rng`]/[`SeedableRng`]/[`RngCore`]
//! traits with `gen`, `gen_range`, and `gen_ratio`. Streams are stable across
//! runs and platforms — exactly what the deterministic workload generators
//! and tests want — but the bit streams are *not* identical to upstream
//! `rand`'s, so golden values derived from them are local to this repo.

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T` over its whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (the stand-in for
/// upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly within the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128 % span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi - lo + 1;
                (lo + (rng.next_u64() as i128 % span)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    ///
    /// Upstream `SmallRng` is explicitly *not* reproducible across versions;
    /// this one is fixed forever, which suits the golden-checksum workloads.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    /// Trivial mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// Yields `start`, `start + step`, `start + 2*step`, … (wrapping).
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates a generator counting up from `start` by `step`.
            pub fn new(start: u64, step: u64) -> Self {
                StepRng { value: start, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.step);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{mock::StepRng, SmallRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = r.gen_range(b'a'..=b'z');
            assert!(x.is_ascii_lowercase());
            let y = r.gen_range(-700..=700);
            assert!((-700..=700).contains(&y));
            let z = r.gen_range(2..8);
            assert!((2..8).contains(&z));
        }
    }

    #[test]
    fn gen_ratio_is_plausible() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..4000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((800..1200).contains(&hits), "1/4 ratio wildly off: {hits}");
    }

    #[test]
    fn step_rng_steps() {
        let mut s = StepRng::new(3, 10);
        assert_eq!(s.gen::<u64>(), 3);
        assert_eq!(s.gen::<u64>(), 13);
    }
}
