//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a fresh value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among type-erased alternatives (built by
/// [`crate::prop_oneof!`]).
#[derive(Debug)]
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.alternatives.len() as u64) as usize;
        self.alternatives[idx].new_value(rng)
    }
}

/// Strategy for any value of a primitive type (the `any::<T>()` entry point).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates arbitrary values of `T` over its whole domain.
pub fn any<T: ArbPrimitive>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Primitive types supported by [`any`].
pub trait ArbPrimitive: Sized {
    /// Draws one arbitrary value.
    fn arb(rng: &mut TestRng) -> Self;
}

impl<T: ArbPrimitive> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

macro_rules! impl_arb_int {
    ($($t:ty),*) => {$(
        impl ArbPrimitive for $t {
            fn arb(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbPrimitive for bool {
    fn arb(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128 % span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                (lo + (rng.next_u64() as i128 % span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
