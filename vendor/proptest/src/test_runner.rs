//! The deterministic case runner behind the [`crate::proptest!`] macro.

/// Configuration for a `proptest!` block (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the deterministic runner fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG (SplitMix64 over a seed derived from the test
/// name and case index), so every failure reproduces identically everywhere.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the test uniquely named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over `cases` generated
/// inputs. An optional leading `#![proptest_config(expr)]` sets the config.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ($($pat,)+) =
                    $crate::strategy::Strategy::new_value(&__strategy, &mut __rng);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($alt)),+
        ])
    };
}
