//! Offline, deterministic stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, exposing the API
//! subset this workspace uses.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors this drop-in. It keeps proptest's *shape* — the [`proptest!`]
//! macro, [`strategy::Strategy`] with [`strategy::Strategy::prop_map`],
//! [`strategy::any`], [`strategy::Just`],
//! [`prop_oneof!`], `prop::collection::vec`, `prop::option::of`,
//! [`prop_assert!`]/[`prop_assert_eq!`], and
//! `ProptestConfig::with_cases` — while simplifying the machinery:
//!
//! * values are generated from a per-test, per-case deterministic RNG
//!   (seeded from the test's module path and name), so failures reproduce
//!   exactly on every run and platform;
//! * there is **no shrinking**: a failing case reports the generated inputs
//!   via the panic message of the assertion that failed (all generated
//!   bindings are `Debug`-printed in the case preamble on failure);
//! * `prop_assert*` are plain assertions (they panic rather than return
//!   `Err`), which is equivalent under this runner.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`, `None` about a quarter of the time
    /// (mirroring upstream's default `Some` probability of 0.75).
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy to produce `Option`s.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}
